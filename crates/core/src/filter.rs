//! The lossy gradient filter (step 1 of Fig. 4a, lines 26–32 of Alg. 1).
//!
//! Values with `|g| < eb_f` are dropped and reconstructed as exactly 0.0;
//! a one-bit-per-element [`Bitmap`] records which positions were dropped.
//! K-FAC gradients concentrate mass near zero, so the filter typically
//! removes the majority of elements, and the resulting mostly-ones bitmap
//! is itself highly compressible. Unlike CocktailSGD's fixed 20% top-k
//! sparsity, the threshold is a *value* bound: selectivity adapts to the
//! gradient distribution (§5.2's "advantage of our method").

use crate::bitmap::Bitmap;

/// Output of the filter: the drop bitmap and the surviving values in
/// their original order.
#[derive(Clone, Debug)]
pub struct Filtered {
    /// Bit `i` set ⇔ element `i` was dropped (reconstructs as 0.0).
    pub bitmap: Bitmap,
    /// The values with `|g| ≥ eb_f`, order-preserving.
    pub kept: Vec<f32>,
}

impl Filtered {
    /// Fraction of elements removed.
    pub fn drop_ratio(&self) -> f64 {
        if self.bitmap.is_empty() {
            return 0.0;
        }
        self.bitmap.count_ones() as f64 / self.bitmap.len() as f64
    }
}

/// Splits `data` into dropped (|g| < eb_f) and kept parts.
pub fn filter(data: &[f32], eb_f: f32) -> Filtered {
    assert!(eb_f >= 0.0, "filter bound must be non-negative");
    let mut kept = Vec::new();
    let bitmap = Bitmap::from_fn(data.len(), |i| {
        let dropped = data[i].abs() < eb_f;
        if !dropped {
            kept.push(data[i]);
        }
        dropped
    });
    Filtered { bitmap, kept }
}

/// Inverse of [`filter`]: scatters `kept` back to the positions whose bits
/// are clear, zero-filling dropped positions.
///
/// # Panics
/// If `kept.len()` disagrees with the bitmap's zero count — a corrupt
/// stream should have been caught by wire validation before reaching here.
pub fn unfilter(bitmap: &Bitmap, kept: &[f32]) -> Vec<f32> {
    assert_eq!(
        kept.len(),
        bitmap.count_zeros(),
        "kept-value count does not match bitmap"
    );
    let mut out = vec![0.0f32; bitmap.len()];
    let mut next = 0usize;
    for (i, slot) in out.iter_mut().enumerate() {
        if !bitmap.get(i) {
            *slot = kept[next];
            next += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    #[test]
    fn basic_split() {
        let data = [0.5f32, -0.01, 0.2, 0.0, -0.9];
        let f = filter(&data, 0.1);
        assert_eq!(f.kept, vec![0.5, 0.2, -0.9]);
        assert!(f.bitmap.get(1) && f.bitmap.get(3));
        assert!(!f.bitmap.get(0) && !f.bitmap.get(2) && !f.bitmap.get(4));
    }

    #[test]
    fn roundtrip_restores_kept_and_zeros_dropped() {
        let mut rng = Rng::new(1);
        let mut data = vec![0.0f32; 5000];
        rng.fill_normal(&mut data);
        let eb = 0.5;
        let f = filter(&data, eb);
        let back = unfilter(&f.bitmap, &f.kept);
        for (&x, &y) in data.iter().zip(&back) {
            if x.abs() < eb {
                assert_eq!(y, 0.0);
            } else {
                assert_eq!(y, x);
            }
        }
    }

    #[test]
    fn filter_error_is_bounded() {
        let mut rng = Rng::new(2);
        let mut data = vec![0.0f32; 10_000];
        rng.fill_normal(&mut data);
        let eb = 0.3;
        let f = filter(&data, eb);
        let back = unfilter(&f.bitmap, &f.kept);
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() < eb, "{x} -> {y}");
        }
    }

    #[test]
    fn zero_threshold_drops_nothing() {
        let data = [0.0f32, 1.0, -1.0, 1e-30];
        let f = filter(&data, 0.0);
        assert_eq!(f.kept.len(), 4);
        assert_eq!(f.drop_ratio(), 0.0);
    }

    #[test]
    fn boundary_is_strict_less_than() {
        // |g| == eb_f is *kept* (Alg. 1: |g| < eb_f is filtered).
        let data = [0.1f32, -0.1, 0.0999];
        let f = filter(&data, 0.1);
        assert_eq!(f.kept, vec![0.1, -0.1]);
    }

    #[test]
    fn drop_ratio_on_laplacian_gradients_is_high() {
        // Gradient-like heavy-tailed data: most mass is near zero, so a
        // modest threshold removes most elements — the premise behind the
        // filter's compression-ratio contribution.
        let mut rng = Rng::new(3);
        let data: Vec<f32> = (0..50_000).map(|_| rng.laplace(0.01)).collect();
        let f = filter(&data, 0.02);
        assert!(f.drop_ratio() > 0.7, "ratio {}", f.drop_ratio());
    }

    #[test]
    fn empty_input() {
        let f = filter(&[], 0.1);
        assert!(f.kept.is_empty());
        assert_eq!(f.drop_ratio(), 0.0);
        assert!(unfilter(&f.bitmap, &f.kept).is_empty());
    }

    #[test]
    #[should_panic(expected = "kept-value count")]
    fn mismatched_kept_count_panics() {
        let f = filter(&[1.0f32, 2.0], 0.5);
        unfilter(&f.bitmap, &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_semantics(
            data in proptest::collection::vec(-2.0f32..2.0, 0..400),
            eb in 0.0f32..1.0,
        ) {
            let f = filter(&data, eb);
            let back = unfilter(&f.bitmap, &f.kept);
            prop_assert_eq!(back.len(), data.len());
            for (&x, &y) in data.iter().zip(&back) {
                if x.abs() < eb {
                    prop_assert_eq!(y, 0.0);
                } else {
                    prop_assert_eq!(y, x);
                }
            }
        }

        #[test]
        fn prop_kept_count_consistent(
            data in proptest::collection::vec(-2.0f32..2.0, 0..400),
            eb in 0.0f32..1.0,
        ) {
            let f = filter(&data, eb);
            prop_assert_eq!(f.kept.len() + f.bitmap.count_ones(), data.len());
        }
    }
}
