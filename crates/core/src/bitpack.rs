//! Variable-width bit packing.
//!
//! §4.3: "our fine-grained algorithm features tunable error bounds ...
//! accomplished by packing bits into bytes based on the specified error
//! bound. For instance, with an error bound set at 1e-2 ... a maximum of
//! 100 quantization bins, corresponding to a 7-bit representation. Each
//! 7-bit group is then packed into bytes." This module is that packer:
//! `width`-bit unsigned codes (1..=32 bits) laid out LSB-first in a byte
//! stream, plus the exact inverse.

use crate::wire::WireError;

/// Number of bits needed to represent values in `0..=max_value`.
pub fn bits_for(max_value: u32) -> u32 {
    (32 - max_value.leading_zeros()).max(1)
}

/// Packs `width`-bit codes LSB-first into bytes.
///
/// # Panics
/// If `width` is 0 or > 32, or any code does not fit in `width` bits.
pub fn pack(codes: &[u32], width: u32) -> Vec<u8> {
    assert!((1..=32).contains(&width), "width {width} out of range");
    let total_bits = codes.len() * width as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut bitpos = 0usize;
    for &code in codes {
        assert!(
            width == 32 || code < (1u32 << width),
            "code {code} does not fit in {width} bits"
        );
        let mut remaining = width;
        let mut value = code as u64;
        while remaining > 0 {
            let byte = bitpos / 8;
            let offset = (bitpos % 8) as u32;
            let space = 8 - offset;
            let take = remaining.min(space);
            let mask = ((1u64 << take) - 1) as u8;
            out[byte] |= (((value & ((1u64 << take) - 1)) as u8) & mask) << offset;
            value >>= take;
            remaining -= take;
            bitpos += take as usize;
        }
    }
    out
}

/// Unpacks `count` codes of `width` bits from a byte stream.
pub fn unpack(bytes: &[u8], width: u32, count: usize) -> Result<Vec<u32>, WireError> {
    if !(1..=32).contains(&width) {
        return Err(WireError::Invalid("bit width"));
    }
    let total_bits = count * width as usize;
    let need = total_bits.div_ceil(8);
    if bytes.len() < need {
        return Err(WireError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    let mut out = Vec::with_capacity(count);
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut value: u64 = 0;
        let mut got: u32 = 0;
        while got < width {
            let byte = bytes[bitpos / 8] as u64;
            let offset = (bitpos % 8) as u32;
            let space = 8 - offset;
            let take = (width - got).min(space);
            let chunk = (byte >> offset) & ((1u64 << take) - 1);
            value |= chunk << got;
            got += take;
            bitpos += take as usize;
        }
        out.push(value as u32);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(100), 7); // the paper's eb=1e-2 example
        assert_eq!(bits_for(127), 7);
        assert_eq!(bits_for(128), 8);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn pack_is_dense() {
        // 100 codes of 7 bits = 700 bits = 88 bytes, vs 100 bytes at 8-bit:
        // the 14% CR advantage the paper quotes.
        let codes = vec![99u32; 100];
        let packed = pack(&codes, 7);
        assert_eq!(packed.len(), 88);
    }

    #[test]
    fn roundtrip_simple() {
        let codes = vec![0u32, 1, 2, 99, 100, 127];
        let packed = pack(&codes, 7);
        assert_eq!(unpack(&packed, 7, codes.len()).unwrap(), codes);
    }

    #[test]
    fn roundtrip_width_32() {
        let codes = vec![0u32, u32::MAX, 12345, 1 << 31];
        let packed = pack(&codes, 32);
        assert_eq!(unpack(&packed, 32, codes.len()).unwrap(), codes);
    }

    #[test]
    fn roundtrip_width_1() {
        let codes = vec![1u32, 0, 1, 1, 0, 0, 0, 1, 1];
        let packed = pack(&codes, 1);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 1, codes.len()).unwrap(), codes);
    }

    #[test]
    fn truncated_input_errors() {
        let packed = pack(&[5u32; 16], 5);
        assert!(unpack(&packed[..packed.len() - 1], 5, 16).is_err());
    }

    #[test]
    fn invalid_width_errors() {
        assert!(unpack(&[0u8; 8], 0, 1).is_err());
        assert!(unpack(&[0u8; 8], 33, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        pack(&[8u32], 3);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            width in 1u32..=31,
            raw in proptest::collection::vec(any::<u32>(), 0..300),
        ) {
            let codes: Vec<u32> = raw.iter().map(|&v| v & ((1u32 << width) - 1)).collect();
            let packed = pack(&codes, width);
            prop_assert_eq!(unpack(&packed, width, codes.len()).unwrap(), codes);
        }

        #[test]
        fn prop_packed_size_is_minimal(
            width in 1u32..=31,
            n in 0usize..300,
        ) {
            let codes = vec![0u32; n];
            let packed = pack(&codes, width);
            prop_assert_eq!(packed.len(), (n * width as usize).div_ceil(8));
        }
    }
}
