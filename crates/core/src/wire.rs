//! Little-endian binary serialization for compressed streams.
//!
//! Every compressed artifact in this crate is self-describing: headers
//! carry lengths, codec ids and normalization ranges, so decompression
//! needs nothing but the bytes. The reader validates bounds on every
//! access and returns [`WireError`] instead of panicking, which is what
//! the failure-injection tests (truncated/corrupted streams) rely on.

/// Upper bound on element counts accepted from untrusted headers.
///
/// 2^28 elements (1 GiB of f32) is far beyond any single K-FAC gradient
/// buffer; larger counts are treated as corruption so that a flipped bit
/// in a length field cannot drive a multi-gigabyte allocation.
pub const MAX_DECODE_ELEMS: usize = 1 << 28;

/// Validates an element count read from an untrusted header.
pub fn checked_count(n: u64) -> Result<usize, WireError> {
    let n = usize::try_from(n).map_err(|_| WireError::Invalid("element count"))?;
    if n > MAX_DECODE_ELEMS {
        return Err(WireError::Invalid("implausible element count"));
    }
    Ok(n)
}

/// Error produced when decoding a malformed or truncated stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the expected field.
    Truncated { need: usize, have: usize },
    /// A field held an invalid value.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated stream: need {need} bytes, have {have}")
            }
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// A fresh writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw bytes, no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u64) byte block.
    pub fn block(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes(v);
    }
}

/// Bounds-checked byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the stream is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Raw bytes of known length.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// A length-prefixed block written by [`Writer::block`].
    pub fn block(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| WireError::Invalid("block length"))?;
        if n > self.remaining() {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX - 1);
        w.f32(-3.25);
        w.block(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), -3.25);
        assert_eq!(r.block().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = Writer::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_block_length_rejected() {
        let mut w = Writer::new();
        w.u64(1_000_000); // claims a million bytes follow
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.block(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut w = Writer::new();
        w.block(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.block().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn remaining_tracks_position() {
        let bytes = [0u8; 10];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.remaining(), 10);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 6);
        r.bytes(6).unwrap();
        assert!(r.is_exhausted());
    }
}
