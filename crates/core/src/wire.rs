//! Little-endian binary serialization for compressed streams.
//!
//! Every compressed artifact in this crate is self-describing: headers
//! carry lengths, codec ids and normalization ranges, so decompression
//! needs nothing but the bytes. The reader validates bounds on every
//! access and returns [`WireError`] instead of panicking, which is what
//! the failure-injection tests (truncated/corrupted streams) rely on.

/// Central registry of every wire-format magic byte in the workspace.
///
/// Nine hand-rolled binary formats travel between ranks or to disk; each
/// one's first byte is a magic from this module, and **only** this module
/// may spell the literal values (`compso-lint`'s `wire-magic-registry`
/// rule rejects bare `0xC?` byte literals anywhere else in prod code, and
/// checks this registry for duplicates). Uniqueness is additionally
/// enforced at compile time by the `const` assertion below, so two
/// formats can never become indistinguishable on the wire.
pub mod magic {
    /// Serial COMPSO pipeline stream (v1), [`crate::pipeline`].
    pub const MAGIC_STREAM_V1: u8 = 0xC5;
    /// Chunked-parallel stream (v2) with a per-chunk byte-offset index,
    /// [`crate::kernels`].
    pub const MAGIC_STREAM_V2: u8 = 0xC6;
    /// Generic multi-layer group framing (serial fallback of
    /// `Compressor::compress_group`), [`crate::traits`].
    pub const MAGIC_GROUP: u8 = 0xC7;
    /// Layer-parallel baseline group framing (QSGD/SZ),
    /// [`crate::baselines::pargroup`].
    pub const MAGIC_PARGROUP: u8 = 0xC8;
    /// Elastic membership-view frame (proposal / rejoin-request /
    /// welcome), `compso-comm`'s membership protocol.
    pub const MAGIC_MEMBERSHIP: u8 = 0xC9;
    /// PowerSGD low-rank factor stream (`P̂`/`Q` pair or raw escape),
    /// [`crate::baselines::PowerSgd`].
    pub const MAGIC_POWERSGD: u8 = 0xCA;
    /// Checkpoint tensor blob (`compso-ckpt`).
    pub const MAGIC_TENSORS: u8 = 0xCB;
    /// Rejoin catch-up delta (epoch-stamped factor-state tensors
    /// all-gathered to a rank rejoining the group), `compso-kfac`.
    pub const MAGIC_REJOIN: u8 = 0xCC;
    /// Checkpoint manifest, written last to commit a snapshot
    /// (`compso-ckpt`).
    pub const MAGIC_MANIFEST: u8 = 0xCD;
    /// CRC-32 integrity frame wrapped around compressed payloads before
    /// they enter a collective, [`super::frame_checksummed`].
    pub const MAGIC_FRAME: u8 = 0xCF;

    /// Every registered magic with its format name, for diagnostics and
    /// the uniqueness tests.
    pub const ALL: &[(&str, u8)] = &[
        ("stream_v1", MAGIC_STREAM_V1),
        ("stream_v2", MAGIC_STREAM_V2),
        ("group", MAGIC_GROUP),
        ("pargroup", MAGIC_PARGROUP),
        ("membership", MAGIC_MEMBERSHIP),
        ("powersgd", MAGIC_POWERSGD),
        ("tensors", MAGIC_TENSORS),
        ("rejoin", MAGIC_REJOIN),
        ("manifest", MAGIC_MANIFEST),
        ("frame", MAGIC_FRAME),
    ];

    /// Compile-time uniqueness proof: building this crate fails if two
    /// registered magics collide.
    const _UNIQUE: () = {
        let mut i = 0;
        while i < ALL.len() {
            let mut j = i + 1;
            while j < ALL.len() {
                assert!(ALL[i].1 != ALL[j].1, "duplicate wire magic byte");
                j += 1;
            }
            i += 1;
        }
    };
}

/// Upper bound on element counts accepted from untrusted headers.
///
/// 2^28 elements (1 GiB of f32) is far beyond any single K-FAC gradient
/// buffer; larger counts are treated as corruption so that a flipped bit
/// in a length field cannot drive a multi-gigabyte allocation.
pub const MAX_DECODE_ELEMS: usize = 1 << 28;

/// Validates an element count read from an untrusted header.
pub fn checked_count(n: u64) -> Result<usize, WireError> {
    let n = usize::try_from(n).map_err(|_| WireError::Invalid("element count"))?;
    if n > MAX_DECODE_ELEMS {
        return Err(WireError::Invalid("implausible element count"));
    }
    Ok(n)
}

/// Magic byte of the checksum frame wrapped around every compressed
/// payload before it enters a collective (see [`frame_checksummed`]).
/// Re-exported from the central [`magic`] registry.
pub use magic::MAGIC_FRAME;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Slicing-by-8 extension of [`CRC32_TABLE`]: `TABLE[t][b]` advances a
/// CRC whose low byte is `b` by `t + 1` further zero bytes, letting the
/// hot loop fold 8 input bytes per iteration with 8 independent table
/// loads instead of 8 dependent single-byte steps. Built at compile
/// time from the same polynomial; the bytewise loop remains the oracle
/// (`crc32_sliced_matches_bytewise`).
const CRC32_TABLE8: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    t[0] = CRC32_TABLE;
    let mut i = 0;
    while i < 256 {
        let mut j = 1;
        while j < 8 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ CRC32_TABLE[(prev & 0xFF) as usize];
            j += 1;
        }
        i += 1;
    }
    t
};

/// IEEE CRC-32 of `bytes` (the polynomial used by zip/ethernet).
///
/// Guards compressed payloads against in-flight corruption: any single
/// bit flip — and any burst shorter than 32 bits — is guaranteed to
/// change the checksum.
///
/// The implementation slices the input 8 bytes at a time (checkpoint
/// files CRC whole multi-megabyte payloads on every save and load, so
/// the bytewise loop was a measurable slice of snapshot latency); the
/// result is identical to the canonical bytewise definition for every
/// input.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC32_TABLE8[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLE8[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLE8[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLE8[4][(lo >> 24) as usize]
            ^ CRC32_TABLE8[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLE8[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLE8[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLE8[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The canonical one-byte-at-a-time CRC loop, retained as the oracle
/// for the sliced implementation.
#[cfg(test)]
fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Wraps `payload` in an integrity frame:
/// `[MAGIC_FRAME][u32 crc32][u64 len][payload]`.
///
/// [`unframe_checksummed`] verifies length and checksum before handing
/// the payload back, so a corrupted collective delivery is detected at
/// the receiver instead of surfacing as a garbage gradient.
pub fn frame_checksummed(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(payload.len() + 13);
    w.u8(MAGIC_FRAME);
    w.u32(crc32(payload));
    w.u64(payload.len() as u64);
    w.bytes(payload);
    w.into_bytes()
}

/// Inverse of [`frame_checksummed`]: validates magic, length, and CRC
/// and returns the payload slice. Never allocates based on the embedded
/// length — the length is checked against the actual buffer first.
pub fn unframe_checksummed(frame: &[u8]) -> Result<&[u8], WireError> {
    let mut r = Reader::new(frame);
    if r.u8()? != MAGIC_FRAME {
        return Err(WireError::Invalid("checksum frame magic"));
    }
    let want_crc = r.u32()?;
    let len = r.u64()?;
    let len = usize::try_from(len).map_err(|_| WireError::Invalid("frame length"))?;
    if len != r.remaining() {
        return Err(WireError::Truncated {
            need: len,
            have: r.remaining(),
        });
    }
    let payload = r.bytes(len)?;
    if crc32(payload) != want_crc {
        return Err(WireError::Invalid("checksum mismatch"));
    }
    Ok(payload)
}

/// Total on-wire length of the checksum frame starting at `buf[0]`, when
/// its header is well-formed and the frame fits inside `buf`. Lets a
/// reader walk a concatenation of [`frame_checksummed`] frames (the
/// per-group streaming gather payload) without any extra length
/// prefixes: frames are self-delimiting. Returns `None` on a bad magic,
/// a short header, or an embedded length pointing past `buf` — the
/// caller treats that as a corrupt payload, never as an allocation size.
pub fn framed_len(buf: &[u8]) -> Option<usize> {
    const HEADER: usize = 13; // magic + u32 crc + u64 len
    if buf.len() < HEADER || buf[0] != MAGIC_FRAME {
        return None;
    }
    let len = u64::from_le_bytes(buf[5..13].try_into().ok()?);
    let len = usize::try_from(len).ok()?;
    let total = HEADER.checked_add(len)?;
    (total <= buf.len()).then_some(total)
}

/// Error produced when decoding a malformed or truncated stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the expected field.
    Truncated { need: usize, have: usize },
    /// A field held an invalid value.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated stream: need {need} bytes, have {have}")
            }
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// A fresh writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw bytes, no length prefix.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u64) byte block.
    pub fn block(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes(v);
    }
}

/// Bounds-checked byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the stream is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Raw bytes of known length.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// A length-prefixed block written by [`Writer::block`].
    pub fn block(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| WireError::Invalid("block length"))?;
        if n > self.remaining() {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX - 1);
        w.f32(-3.25);
        w.block(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), -3.25);
        assert_eq!(r.block().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = Writer::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..2]);
        assert!(matches!(r.u32(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_block_length_rejected() {
        let mut w = Writer::new();
        w.u64(1_000_000); // claims a million bytes follow
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.block(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut w = Writer::new();
        w.block(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.block().unwrap(), &[] as &[u8]);
    }

    #[test]
    fn magic_registry_is_unique_and_stable() {
        // Pairwise distinct (the const assertion proves this at compile
        // time; this keeps the property visible in the test report).
        for (i, (name_a, a)) in magic::ALL.iter().enumerate() {
            for (name_b, b) in &magic::ALL[i + 1..] {
                assert_ne!(a, b, "{name_a} and {name_b} share a magic byte");
            }
        }
        // Wire compatibility: the registered values are frozen — changing
        // any of them silently orphans every previously written stream,
        // snapshot, and checkpoint.
        assert_eq!(magic::MAGIC_STREAM_V1, 0xC5);
        assert_eq!(magic::MAGIC_STREAM_V2, 0xC6);
        assert_eq!(magic::MAGIC_GROUP, 0xC7);
        assert_eq!(magic::MAGIC_PARGROUP, 0xC8);
        assert_eq!(magic::MAGIC_MEMBERSHIP, 0xC9);
        assert_eq!(magic::MAGIC_POWERSGD, 0xCA);
        assert_eq!(magic::MAGIC_TENSORS, 0xCB);
        assert_eq!(magic::MAGIC_REJOIN, 0xCC);
        assert_eq!(magic::MAGIC_MANIFEST, 0xCD);
        assert_eq!(magic::MAGIC_FRAME, 0xCF);
        assert_eq!(magic::ALL.len(), 10);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_sliced_matches_bytewise() {
        // The 8-byte slicing kernel against the canonical loop, across
        // every alignment of the chunked main loop and its tail.
        let mut buf = Vec::new();
        let mut x = 0x12345678u32;
        for n in 0..100usize {
            buf.clear();
            for _ in 0..n {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                buf.push((x >> 24) as u8);
            }
            assert_eq!(crc32(&buf), crc32_bytewise(&buf), "n={n}");
        }
        // One large buffer exercising sustained 8-byte folding.
        buf.clear();
        for i in 0..65_537u32 {
            buf.push((i.wrapping_mul(2654435761) >> 13) as u8);
        }
        assert_eq!(crc32(&buf), crc32_bytewise(&buf));
    }

    #[test]
    fn checksum_frame_roundtrip_and_detection() {
        let payload = vec![0xAB; 257];
        let frame = frame_checksummed(&payload);
        assert_eq!(frame[0], MAGIC_FRAME);
        assert_eq!(unframe_checksummed(&frame).unwrap(), payload.as_slice());

        // Every single-bit flip anywhere in the frame is detected.
        for byte in [0usize, 1, 5, 12, 13, frame.len() - 1] {
            for bit in [0u8, 3, 7] {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    unframe_checksummed(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }

        // Truncation and extension are detected.
        assert!(unframe_checksummed(&frame[..frame.len() - 1]).is_err());
        let mut long = frame.clone();
        long.push(0);
        assert!(unframe_checksummed(&long).is_err());

        // A hostile length prefix cannot drive an allocation: the frame
        // declares 2^60 bytes but the function just errors.
        let mut hostile = frame_checksummed(&[1, 2, 3]);
        hostile[5..13].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(unframe_checksummed(&hostile).is_err());
    }

    #[test]
    fn empty_payload_frames() {
        let frame = frame_checksummed(&[]);
        assert_eq!(unframe_checksummed(&frame).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn framed_len_walks_concatenated_frames() {
        let a = frame_checksummed(&[1, 2, 3]);
        let b = frame_checksummed(&[]);
        let c = frame_checksummed(&vec![9u8; 300]);
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        // Walk the concatenation frame by frame.
        let mut off = 0usize;
        let mut lens = Vec::new();
        while off < concat.len() {
            let l = framed_len(&concat[off..]).expect("well-formed frame");
            assert!(unframe_checksummed(&concat[off..off + l]).is_ok());
            lens.push(l);
            off += l;
        }
        assert_eq!(off, concat.len());
        assert_eq!(lens, vec![a.len(), b.len(), c.len()]);

        // Hostile inputs yield None, never a length past the buffer.
        assert_eq!(framed_len(&[]), None);
        assert_eq!(framed_len(&a[..12]), None); // short header
        let mut bad_magic = a.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(framed_len(&bad_magic), None);
        let mut hostile = a.clone();
        hostile[5..13].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert_eq!(framed_len(&hostile), None);
        // Truncated body: header claims more than the buffer holds.
        assert_eq!(framed_len(&c[..c.len() - 1]), None);
    }

    #[test]
    fn remaining_tracks_position() {
        let bytes = [0u8; 10];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.remaining(), 10);
        r.u32().unwrap();
        assert_eq!(r.remaining(), 6);
        r.bytes(6).unwrap();
        assert!(r.is_exhausted());
    }
}
