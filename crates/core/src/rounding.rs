//! Rounding modes for quantization (§2.3 and §4.2 of the paper).
//!
//! Three modes are analyzed in the paper:
//!
//! * **RN** — deterministic round-to-nearest (used by SZ). Error on a bin
//!   of width `w` is uniform on `[-w/2, w/2]`.
//! * **SR** — stochastic rounding (Eq. 4, used by QSGD and COMPSO): round
//!   up with probability equal to the fractional position inside the bin.
//!   Unbiased (`E[round(x)] = x`); error on a bin of width `w` is
//!   *triangular* on `(-w, w)` over a distribution of inputs.
//! * **P0.5** — "mode-2 SR": round up/down with probability ½ regardless
//!   of position. Non-deterministic but *biased per-value* and its error
//!   is uniform — the control experiment showing that it is the error
//!   *shape*, not mere non-determinism, that preserves accuracy.

use compso_tensor::rng::Rng;

/// The rounding rule applied to a real-valued bin coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundingMode {
    /// Deterministic round-to-nearest.
    Nearest,
    /// Stochastic rounding, Eq. 4.
    Stochastic,
    /// Equal-probability up/down rounding ("mode-2 SR" of Croci et al.).
    HalfProbability,
}

impl RoundingMode {
    /// Short stable identifier (wire format, table output).
    pub fn tag(self) -> u8 {
        match self {
            RoundingMode::Nearest => 0,
            RoundingMode::Stochastic => 1,
            RoundingMode::HalfProbability => 2,
        }
    }

    /// Inverse of [`RoundingMode::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(RoundingMode::Nearest),
            1 => Some(RoundingMode::Stochastic),
            2 => Some(RoundingMode::HalfProbability),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RoundingMode::Nearest => "RN",
            RoundingMode::Stochastic => "SR",
            RoundingMode::HalfProbability => "P0.5",
        }
    }

    /// True when the mode consumes randomness.
    pub fn is_stochastic(self) -> bool {
        !matches!(self, RoundingMode::Nearest)
    }

    /// Rounds a bin coordinate `x` (value expressed in units of the bin
    /// width) to an integer bin index.
    #[inline]
    pub fn round(self, x: f64, rng: &mut Rng) -> i64 {
        match self {
            RoundingMode::Nearest => x.round_ties_even() as i64,
            RoundingMode::Stochastic => {
                let floor = x.floor();
                let p = x - floor; // probability of rounding up (Eq. 4)
                if rng.uniform_f64() < p {
                    floor as i64 + 1
                } else {
                    floor as i64
                }
            }
            RoundingMode::HalfProbability => {
                let floor = x.floor();
                if x == floor {
                    return floor as i64; // exact grid point: no choice to make
                }
                if rng.uniform_f64() < 0.5 {
                    floor as i64 + 1
                } else {
                    floor as i64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::stats::{classify_error_shape, ErrorShape};

    #[test]
    fn tags_roundtrip() {
        for m in [
            RoundingMode::Nearest,
            RoundingMode::Stochastic,
            RoundingMode::HalfProbability,
        ] {
            assert_eq!(RoundingMode::from_tag(m.tag()), Some(m));
        }
        assert_eq!(RoundingMode::from_tag(99), None);
    }

    #[test]
    fn nearest_is_deterministic_and_bounded() {
        let mut rng = Rng::new(1);
        for &(x, want) in &[(0.4, 0i64), (0.6, 1), (-0.4, 0), (-0.6, -1), (2.0, 2)] {
            assert_eq!(RoundingMode::Nearest.round(x, &mut rng), want, "x={x}");
        }
    }

    #[test]
    fn stochastic_rounds_to_adjacent_integers_only() {
        let mut rng = Rng::new(2);
        for i in 0..10_000 {
            let x = -5.0 + (i as f64) * 0.001;
            let r = RoundingMode::Stochastic.round(x, &mut rng);
            assert!(r == x.floor() as i64 || r == x.ceil() as i64, "x={x} r={r}");
        }
    }

    #[test]
    fn stochastic_is_unbiased() {
        let mut rng = Rng::new(3);
        let x = 2.3;
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| RoundingMode::Stochastic.round(x, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - x).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn half_probability_is_biased_toward_half() {
        // P0.5 rounds x=2.9 up only half the time -> expectation 2.5, not 2.9.
        let mut rng = Rng::new(4);
        let x = 2.9;
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| RoundingMode::HalfProbability.round(x, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exact_integers_are_preserved_by_all_modes() {
        let mut rng = Rng::new(5);
        for m in [
            RoundingMode::Nearest,
            RoundingMode::Stochastic,
            RoundingMode::HalfProbability,
        ] {
            for x in [-3.0, 0.0, 7.0] {
                for _ in 0..100 {
                    assert_eq!(m.round(x, &mut rng), x as i64, "{m:?} x={x}");
                }
            }
        }
    }

    /// The paper's Figure 5 claim, as a unit test: RN error over random
    /// inputs is uniform; SR error is triangular.
    #[test]
    fn error_shapes_match_paper_figure5() {
        let mut rng = Rng::new(6);
        let n = 300_000;
        let mut rn_errors = Vec::with_capacity(n);
        let mut sr_errors = Vec::with_capacity(n);
        let mut p5_errors = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.range_f32(-100.0, 100.0) as f64;
            rn_errors.push((RoundingMode::Nearest.round(x, &mut rng) as f64 - x) as f32);
            sr_errors.push((RoundingMode::Stochastic.round(x, &mut rng) as f64 - x) as f32);
            p5_errors.push((RoundingMode::HalfProbability.round(x, &mut rng) as f64 - x) as f32);
        }
        let (rn_shape, ..) = classify_error_shape(&rn_errors, 0.5, 16);
        assert_eq!(rn_shape, ErrorShape::Uniform);
        let (sr_shape, ..) = classify_error_shape(&sr_errors, 1.0, 16);
        assert_eq!(sr_shape, ErrorShape::Triangular);
        let (p5_shape, ..) = classify_error_shape(&p5_errors, 1.0, 16);
        assert_eq!(p5_shape, ErrorShape::Uniform);
    }

    #[test]
    fn rounding_error_is_bounded_by_one_bin() {
        let mut rng = Rng::new(7);
        for m in [
            RoundingMode::Nearest,
            RoundingMode::Stochastic,
            RoundingMode::HalfProbability,
        ] {
            for _ in 0..50_000 {
                let x = rng.range_f32(-50.0, 50.0) as f64;
                let r = m.round(x, &mut rng) as f64;
                let bound = if m == RoundingMode::Nearest { 0.5 } else { 1.0 };
                assert!((r - x).abs() <= bound + 1e-9, "{m:?}: x={x} r={r}");
            }
        }
    }
}
