//! The COMPSO compression pipeline (Fig. 4a, Alg. 1).
//!
//! A [`Compso`] instance fixes one compression *strategy* — filter bound,
//! quantizer bound, rounding mode, lossless codec. The iteration-wise
//! adaptive mechanism ([`crate::adaptive`]) swaps strategies across
//! training; the layer-wise mechanism aggregates several layers per call
//! via [`Compso::compress_layers`] while keeping each layer's
//! normalization range separate (the GPU implementation's "padded shared
//! memory" rule, §4.5).

use crate::bitmap::Bitmap;
use crate::encoders::Codec;
use crate::filter::{filter, unfilter};
use crate::quantize::{Quantized, Quantizer};
use crate::rounding::RoundingMode;
use crate::traits::{CompressError, Compressor};
use crate::wire::{Reader, WireError, Writer};
use compso_obs::{names, Recorder};
use compso_tensor::rng::Rng;

/// Magic byte opening every COMPSO stream (registered as
/// [`crate::wire::magic::MAGIC_STREAM_V1`]).
pub const MAGIC: u8 = crate::wire::magic::MAGIC_STREAM_V1;
/// Wire format version.
pub const VERSION: u8 = 1;

const FLAG_FILTER: u8 = 0b0000_0001;

/// One COMPSO compression strategy.
#[derive(Clone, Copy, Debug)]
pub struct CompsoConfig {
    /// Filter bound, relative to the layer's value range. `None` disables
    /// the filter branch (the "conservative, SR-only" mode of §5.1).
    pub eb_filter: Option<f32>,
    /// Quantizer bound, relative to the surviving values' range.
    pub eb_quant: f32,
    /// Rounding rule for the quantizer (SR for COMPSO proper; RN and P0.5
    /// exist for the §4.2 ablation).
    pub mode: RoundingMode,
    /// Lossless encoder applied to the bitmap and the packed codes.
    pub codec: Codec,
}

impl CompsoConfig {
    /// The paper's aggressive strategy: filter + SR at a loose bound
    /// (4E-3 in the ResNet-50/Mask R-CNN experiments).
    pub fn aggressive(eb: f32) -> Self {
        CompsoConfig {
            eb_filter: Some(eb),
            eb_quant: eb,
            mode: RoundingMode::Stochastic,
            codec: Codec::Ans,
        }
    }

    /// The paper's conservative strategy: SR only, no filtering.
    pub fn conservative(eb: f32) -> Self {
        CompsoConfig {
            eb_filter: None,
            eb_quant: eb,
            mode: RoundingMode::Stochastic,
            codec: Codec::Ans,
        }
    }

    /// Replaces the lossless codec (encoder selection, §4.4).
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Replaces the rounding mode (§4.2 ablations).
    pub fn with_mode(mut self, mode: RoundingMode) -> Self {
        self.mode = mode;
        self
    }
}

impl Default for CompsoConfig {
    fn default() -> Self {
        CompsoConfig::aggressive(4e-3)
    }
}

/// The COMPSO compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Compso {
    /// The active strategy.
    pub config: CompsoConfig,
}

impl Compso {
    /// Creates a compressor with the given strategy.
    pub fn new(config: CompsoConfig) -> Self {
        Compso { config }
    }

    /// Serializes one layer's payload (bitmap? + quantized codes) into `w`.
    /// The bitmap and code streams stay *unencoded* here; the caller
    /// aggregates across layers before invoking the lossless codec, which
    /// is exactly the layer-aggregation mechanism of §4.4.
    fn encode_layer(
        &self,
        data: &[f32],
        rng: &mut Rng,
        bitmaps: &mut Vec<u8>,
        codes: &mut Writer,
        rec: &Recorder,
    ) {
        let mm = compso_tensor::reduce::minmax_flat(data);
        let range = if data.is_empty() {
            0.0
        } else {
            mm.max - mm.min
        };

        let filtered = {
            let _span = rec.span(names::CORE_FILTER);
            match self.config.eb_filter {
                Some(ebf) if range > 0.0 => Some(filter(data, ebf * range)),
                _ => None,
            }
        };

        codes.u64(data.len() as u64);
        match &filtered {
            Some(f) => {
                codes.u8(1);
                bitmaps.extend_from_slice(&f.bitmap.to_bytes());
            }
            None => codes.u8(0),
        }
        // The no-filter branch quantizes `data` in place — no `to_vec`
        // copy of the whole layer on the hot path.
        let kept: &[f32] = filtered.as_ref().map_or(data, |f| f.kept.as_slice());
        let _span = rec.span(names::CORE_QUANTIZE);
        let quantizer = Quantizer::relative(self.config.eb_quant, self.config.mode);
        let quant = quantizer.quantize(kept, rng);
        quant.write(codes);
    }

    /// Deserializes one layer written by [`Compso::encode_layer`].
    fn decode_layer(codes: &mut Reader, bitmaps: &mut Reader) -> Result<Vec<f32>, CompressError> {
        let n = usize::try_from(codes.u64()?).map_err(|_| WireError::Invalid("layer length"))?;
        let has_bitmap = match codes.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Invalid("bitmap flag").into()),
        };
        let bitmap = if has_bitmap {
            let bytes = bitmaps.bytes(n.div_ceil(8))?;
            Some(Bitmap::from_bytes(n, bytes)?)
        } else {
            None
        };
        let quant = Quantized::read(codes)?;
        let kept = quant.dequantize();
        match bitmap {
            Some(b) => {
                if kept.len() != b.count_zeros() {
                    return Err(CompressError::Corrupt("kept count vs bitmap"));
                }
                Ok(unfilter(&b, &kept))
            }
            None => {
                if kept.len() != n {
                    return Err(CompressError::Corrupt("value count vs layer length"));
                }
                Ok(kept)
            }
        }
    }

    /// Compresses several layers as one aggregated unit (§4.4's
    /// layer-aggregation factor `m`). Each layer keeps its own
    /// normalization range; the bitmap and code streams are concatenated
    /// across layers before the single lossless-encoder invocation.
    pub fn compress_layers(&self, layers: &[&[f32]], rng: &mut Rng) -> Vec<u8> {
        self.compress_layers_recorded(layers, rng, &Recorder::disabled())
    }

    /// [`Compso::compress_layers`] with phase timings and traffic counters
    /// recorded into `rec`: spans `core/filter`, `core/quantize`,
    /// `core/encode`; counters `core/bytes_in` (uncompressed f32 bytes)
    /// and `core/bytes_out` (wire bytes), whose running quotient is the
    /// live compression ratio.
    pub fn compress_layers_recorded(
        &self,
        layers: &[&[f32]],
        rng: &mut Rng,
        rec: &Recorder,
    ) -> Vec<u8> {
        // Pre-size both working buffers from the layer sizes: the bitmap
        // stream is exactly one bit per element when the filter runs, and
        // the code stream is bounded by ~2 bytes/element plus small
        // per-layer headers for the bounds used here — so the hot path
        // reallocates (almost) never instead of doubling repeatedly.
        let total: usize = layers.iter().map(|l| l.len()).sum();
        let bitmap_cap = if self.config.eb_filter.is_some() {
            layers.iter().map(|l| l.len().div_ceil(8)).sum()
        } else {
            0
        };
        let mut bitmaps: Vec<u8> = Vec::with_capacity(bitmap_cap);
        let mut codes = Writer::with_capacity(total * 2 + layers.len() * 32);
        for layer in layers {
            self.encode_layer(layer, rng, &mut bitmaps, &mut codes, rec);
        }
        let out = {
            let _span = rec.span(names::CORE_ENCODE);
            let enc_bitmaps = self.config.codec.encode(&bitmaps);
            let enc_codes = self.config.codec.encode(&codes.into_bytes());

            let mut w = Writer::with_capacity(enc_bitmaps.len() + enc_codes.len() + 32);
            w.u8(MAGIC);
            w.u8(VERSION);
            w.u8(self.config.codec.tag());
            w.u8(if self.config.eb_filter.is_some() {
                FLAG_FILTER
            } else {
                0
            });
            w.u32(layers.len() as u32);
            w.block(&enc_bitmaps);
            w.block(&enc_codes);
            w.into_bytes()
        };
        if rec.is_enabled() {
            let n: usize = layers.iter().map(|l| l.len()).sum();
            rec.add(names::CORE_BYTES_IN, (n * 4) as u64);
            rec.add(names::CORE_BYTES_OUT, out.len() as u64);
        }
        out
    }

    /// Inverse of [`Compso::compress_layers`].
    pub fn decompress_layers(&self, bytes: &[u8]) -> Result<Vec<Vec<f32>>, CompressError> {
        self.decompress_layers_recorded(bytes, &Recorder::disabled())
    }

    /// [`Compso::decompress_layers`] with the whole decode path timed
    /// under the `core/decode` span and incoming wire bytes counted in
    /// `core/decode_bytes_in`.
    pub fn decompress_layers_recorded(
        &self,
        bytes: &[u8],
        rec: &Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        let _span = rec.span(names::CORE_DECODE);
        rec.add(names::CORE_DECODE_BYTES_IN, bytes.len() as u64);
        let mut r = Reader::new(bytes);
        if r.u8()? != MAGIC {
            return Err(WireError::Invalid("magic byte").into());
        }
        if r.u8()? != VERSION {
            return Err(WireError::Invalid("version").into());
        }
        let codec = Codec::from_tag(r.u8()?).ok_or(WireError::Invalid("codec tag"))?;
        let _flags = r.u8()?;
        let n_layers = crate::wire::checked_count(r.u32()? as u64)?;
        let bitmaps = codec.decode(r.block()?)?;
        let codes = codec.decode(r.block()?)?;
        let mut bitmaps_r = Reader::new(&bitmaps);
        let mut codes_r = Reader::new(&codes);
        let mut out = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            out.push(Self::decode_layer(&mut codes_r, &mut bitmaps_r)?);
        }
        Ok(out)
    }
}

impl Compressor for Compso {
    fn name(&self) -> &'static str {
        "COMPSO"
    }

    fn compress(&self, data: &[f32], rng: &mut Rng) -> Vec<u8> {
        self.compress_layers(&[data], rng)
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Vec<f32>, CompressError> {
        self.decompress_recorded(bytes, &Recorder::disabled())
    }

    fn compress_recorded(&self, data: &[f32], rng: &mut Rng, rec: &Recorder) -> Vec<u8> {
        self.compress_layers_recorded(&[data], rng, rec)
    }

    fn decompress_recorded(&self, bytes: &[u8], rec: &Recorder) -> Result<Vec<f32>, CompressError> {
        let mut layers = self.decompress_layers_recorded(bytes, rec)?;
        if layers.len() != 1 {
            return Err(CompressError::Corrupt("expected a single layer"));
        }
        Ok(layers.pop().unwrap())
    }

    fn compress_group(
        &self,
        layers: &[&[f32]],
        schedule: Option<&crate::kernels::LayerSchedule>,
        rng: &mut Rng,
        rec: &Recorder,
    ) -> Vec<u8> {
        // The serial pipeline has its own native multi-layer aggregation
        // (§4.4); the chunk schedule is a no-op hint for it.
        let _ = schedule;
        self.compress_layers_recorded(layers, rng, rec)
    }

    fn decompress_group(
        &self,
        bytes: &[u8],
        rec: &Recorder,
    ) -> Result<Vec<Vec<f32>>, CompressError> {
        self.decompress_layers_recorded(bytes, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: proptest's prelude also globs a `Rng` trait.
    use compso_tensor::rng::Rng;

    /// K-FAC-shaped gradients (heavy zero mass, wide outlier-driven
    /// range); the `scale` argument scales the whole stream.
    fn gradient_like(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut data =
            crate::synthetic::generate(n, seed, crate::synthetic::GradientProfile::kfac());
        let k = scale / 0.004;
        for v in &mut data {
            *v *= k;
        }
        data
    }

    #[test]
    fn roundtrip_error_contract_aggressive() {
        let data = gradient_like(50_000, 1, 0.01);
        let eb = 4e-3f32;
        let compso = Compso::new(CompsoConfig::aggressive(eb));
        let mut rng = Rng::new(2);
        let bytes = compso.compress(&data, &mut rng);
        let back = compso.decompress(&bytes).unwrap();
        assert_eq!(back.len(), data.len());
        let mm = compso_tensor::reduce::minmax_flat(&data);
        let range = mm.max - mm.min;
        for (i, (&x, &y)) in data.iter().zip(&back).enumerate() {
            if y == 0.0 {
                // Filtered: original must have been below the filter bound.
                assert!(x.abs() <= eb * range * 1.001, "i={i} x={x}");
            } else {
                // Quantized: within the quantizer bound of the kept range.
                assert!(
                    (x - y).abs() <= eb * range * 1.01 + 1e-7,
                    "i={i} {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn conservative_mode_never_zeroes_large_values() {
        let data = gradient_like(10_000, 3, 0.1);
        let compso = Compso::new(CompsoConfig::conservative(4e-3));
        let mut rng = Rng::new(4);
        let back = compso
            .decompress(&compso.compress(&data, &mut rng))
            .unwrap();
        // No filter: every element reconstructs within the quantizer bound.
        let mm = compso_tensor::reduce::minmax_flat(&data);
        let range = mm.max - mm.min;
        for (&x, &y) in data.iter().zip(&back) {
            assert!((x - y).abs() <= 4e-3 * range + 1e-6);
        }
    }

    #[test]
    fn achieves_high_compression_ratio_on_gradients() {
        // The headline claim: >20x on K-FAC-gradient-like data.
        let data = gradient_like(200_000, 5, 0.005);
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(6);
        let ratio = compso.ratio(&data, &mut rng);
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn filter_improves_ratio_over_sr_only() {
        let data = gradient_like(100_000, 7, 0.005);
        let mut rng = Rng::new(8);
        let with_filter = Compso::new(CompsoConfig::aggressive(4e-3)).ratio(&data, &mut rng);
        let without = Compso::new(CompsoConfig::conservative(4e-3)).ratio(&data, &mut rng);
        assert!(
            with_filter > without,
            "filter {with_filter} vs sr-only {without}"
        );
    }

    #[test]
    fn layer_aggregation_roundtrip() {
        let l1 = gradient_like(1000, 9, 0.01);
        let l2 = gradient_like(5000, 10, 1.0); // very different range
        let l3 = vec![0.0f32; 100];
        let l4: Vec<f32> = Vec::new();
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(11);
        let bytes = compso.compress_layers(&[&l1, &l2, &l3, &l4], &mut rng);
        let back = compso.decompress_layers(&bytes).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back[0].len(), 1000);
        assert_eq!(back[1].len(), 5000);
        assert!(back[2].iter().all(|&v| v == 0.0));
        assert!(back[3].is_empty());
        // Per-layer ranges stayed separate: the small-scale layer must not
        // be destroyed by the large-scale layer's range.
        let mm1 = compso_tensor::reduce::minmax_flat(&l1);
        let range1 = mm1.max - mm1.min;
        for (&x, &y) in l1.iter().zip(&back[0]) {
            assert!((x - y).abs() <= 4e-3 * range1 * 1.01 + 1e-7, "{x} vs {y}");
        }
    }

    #[test]
    fn aggregation_amortizes_headers_on_small_layers() {
        // The aggregation win: one codec invocation (one header, one
        // frequency table) across many small layers, vs. per-layer fixed
        // costs. This is why §4.4 aggregates small layers before
        // compression.
        let layers: Vec<Vec<f32>> = (0..64).map(|i| gradient_like(400, 20 + i, 0.01)).collect();
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(30);
        let together = compso.compress_layers(&refs, &mut rng).len();
        let separate: usize = refs
            .iter()
            .map(|l| compso.compress_layers(&[l], &mut rng).len())
            .sum();
        // Per-layer fixed costs are already small (codecs fall back to
        // stored blocks on tiny inputs), so the win is real but modest.
        assert!(
            together < separate,
            "together {together} separate {separate}"
        );
    }

    #[test]
    fn aggregation_ratio_cost_is_bounded_on_large_layers() {
        // On large layers with shifted per-layer code distributions, the
        // shared entropy table can cost some ratio; that cost must stay
        // modest (the latency/throughput win is what aggregation buys).
        let layers: Vec<Vec<f32>> = (0..8)
            .map(|i| gradient_like(20_000, 20 + i, 0.01))
            .collect();
        let refs: Vec<&[f32]> = layers.iter().map(|l| l.as_slice()).collect();
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(30);
        let together = compso.compress_layers(&refs, &mut rng).len();
        let separate: usize = refs
            .iter()
            .map(|l| compso.compress_layers(&[l], &mut rng).len())
            .sum();
        assert!(
            (together as f64) < separate as f64 * 1.5,
            "together {together} separate {separate}"
        );
    }

    #[test]
    fn all_codecs_work_in_pipeline() {
        let data = gradient_like(5000, 40, 0.01);
        for codec in Codec::all() {
            let compso = Compso::new(CompsoConfig::aggressive(4e-3).with_codec(codec));
            let mut rng = Rng::new(41);
            let bytes = compso.compress(&data, &mut rng);
            let back = compso.decompress(&bytes).unwrap();
            assert_eq!(back.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn empty_and_constant_inputs() {
        let compso = Compso::default();
        let mut rng = Rng::new(50);
        for data in [vec![], vec![0.0f32; 100], vec![7.5f32; 64]] {
            let bytes = compso.compress(&data, &mut rng);
            let back = compso.decompress(&bytes).unwrap();
            assert_eq!(back.len(), data.len());
            for (&x, &y) in data.iter().zip(&back) {
                assert_eq!(x, y, "degenerate inputs are exact");
            }
        }
    }

    #[test]
    fn corrupt_magic_rejected() {
        let data = gradient_like(100, 60, 0.01);
        let compso = Compso::default();
        let mut rng = Rng::new(61);
        let mut bytes = compso.compress(&data, &mut rng);
        bytes[0] = 0x00;
        assert!(compso.decompress(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let data = gradient_like(2000, 62, 0.01);
        let compso = Compso::default();
        let mut rng = Rng::new(63);
        let bytes = compso.compress(&data, &mut rng);
        for cut in [0usize, 1, 3, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(compso.decompress(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn smaller_eb_means_lower_ratio_higher_fidelity() {
        let data = gradient_like(100_000, 64, 0.01);
        let mut rng = Rng::new(65);
        let loose = Compso::new(CompsoConfig::aggressive(1e-1)).ratio(&data, &mut rng);
        let tight = Compso::new(CompsoConfig::aggressive(4e-3)).ratio(&data, &mut rng);
        assert!(loose > tight, "loose {loose} tight {tight}");
    }

    #[test]
    fn recorded_compression_tracks_phases_and_traffic() {
        let data = gradient_like(30_000, 70, 0.01);
        let compso = Compso::new(CompsoConfig::aggressive(4e-3));
        let mut rng = Rng::new(71);
        let rec = compso_obs::Recorder::enabled();
        let bytes = compso.compress_layers_recorded(&[&data], &mut rng, &rec);
        let back = compso.decompress_layers_recorded(&bytes, &rec).unwrap();
        assert_eq!(back[0].len(), data.len());
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(compso_obs::names::CORE_BYTES_IN),
            (data.len() * 4) as u64
        );
        assert_eq!(
            snap.counter(compso_obs::names::CORE_BYTES_OUT),
            bytes.len() as u64
        );
        assert_eq!(
            snap.counter(compso_obs::names::CORE_DECODE_BYTES_IN),
            bytes.len() as u64
        );
        for name in [
            compso_obs::names::CORE_FILTER,
            compso_obs::names::CORE_QUANTIZE,
            compso_obs::names::CORE_ENCODE,
            compso_obs::names::CORE_DECODE,
        ] {
            assert!(snap.timers[name].count > 0, "{name} never timed");
        }
        // The recorded and plain paths produce identical bytes.
        let mut rng2 = Rng::new(71);
        assert_eq!(bytes, compso.compress_layers(&[&data], &mut rng2));
    }

    #[test]
    fn disabled_recorder_leaves_output_unchanged() {
        let data = gradient_like(5000, 80, 0.01);
        let compso = Compso::default();
        let rec = compso_obs::Recorder::disabled();
        let mut rng = Rng::new(81);
        let a = compso.compress_layers_recorded(&[&data], &mut rng, &rec);
        let mut rng = Rng::new(81);
        let b = compso.compress_layers(&[&data], &mut rng);
        assert_eq!(a, b);
        assert!(rec.snapshot().counters.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_roundtrip_length_and_bound(
            data in proptest::collection::vec(-10.0f32..10.0, 0..2000),
            seed in any::<u64>(),
        ) {
            let eb = 0.01f32;
            let compso = Compso::new(CompsoConfig::aggressive(eb));
            let mut rng = Rng::new(seed);
            let bytes = compso.compress(&data, &mut rng);
            let back = compso.decompress(&bytes).unwrap();
            prop_assert_eq!(back.len(), data.len());
            let mm = compso_tensor::reduce::minmax_flat(&data);
            let range = if data.is_empty() { 0.0 } else { mm.max - mm.min };
            for (&x, &y) in data.iter().zip(&back) {
                if y == 0.0 {
                    prop_assert!(x.abs() <= eb * range + range * 1e-5 + 1e-6);
                } else {
                    prop_assert!((x - y).abs() <= eb * range + range * 1e-5 + 1e-6);
                }
            }
        }
    }
}
