//! Compressed, CRC-framed checkpoint/restore for the COMPSO reproduction.
//!
//! The crate snapshots full training state — model weights, optimizer
//! moments, K-FAC factor state (including cached eigendecompositions and
//! Cholesky factors), distributed schedule metadata, and per-rank RNG
//! streams — into a versioned on-disk format built from the same wire
//! primitives as the training-time compression path:
//!
//! * Tensor payloads are the raw little-endian bytes of each buffer,
//!   losslessly encoded with the rayon-parallel block codec
//!   (`compso_core::encoders`) and wrapped in the `0xCF` CRC frame.
//!   Bit-exactness of every IEEE word is the contract: resume must
//!   continue the trajectory identically.
//! * A [`Manifest`] (magic `0xCD`) written **last** records per-rank
//!   file lengths, CRCs, and a per-tensor byte index. Until the
//!   manifest exists the snapshot does not exist, which makes the
//!   tmp-dir + fsync + rename save protocol atomic.
//! * All parsers follow the hostile-length discipline of
//!   `compso_core::wire`: every count bounded by the bytes present,
//!   every shape product overflow-checked, trailing bytes rejected.
//!
//! The coordination protocol (which rank writes which factors, how
//! restored state is redistributed) lives upstream in `compso-kfac`;
//! this crate owns the format and the single-directory store.

pub mod manifest;
pub mod snapshot;
pub mod store;

pub use manifest::{Manifest, RankFileMeta, TensorMeta, MAGIC_MANIFEST, MANIFEST_VERSION};
pub use snapshot::{
    decode_tensors, encode_tensors, Dtype, Snapshot, TensorData, TensorEntry, MAGIC_TENSORS,
};
pub use store::CheckpointStore;

use compso_core::wire::WireError;

/// Errors surfaced by checkpoint save/load.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure (create/write/fsync/rename/read).
    Io(std::io::Error),
    /// Wire-level parse failure (truncation, bad frame CRC, ...).
    Wire(WireError),
    /// Structurally valid wire data that violates a manifest or
    /// snapshot invariant (bad magic, non-tiling offsets, CRC
    /// mismatch of decoded bytes, ...).
    Corrupt(&'static str),
    /// No loadable snapshot exists in the store.
    NoSnapshot,
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::Wire(e) => write!(f, "checkpoint wire: {e}"),
            CkptError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            CkptError::NoSnapshot => write!(f, "no loadable snapshot"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CkptError {
    fn from(e: WireError) -> Self {
        CkptError::Wire(e)
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}
