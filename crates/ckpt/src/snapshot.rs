//! The in-memory checkpoint model: named, typed, 2-D tensors.
//!
//! A [`Snapshot`] is what one rank contributes to a coordinated
//! checkpoint: a flat list of [`TensorEntry`]s (model weights, K-FAC
//! factors, optimizer moments, RNG words, counters) keyed by
//! slash-namespaced names such as `kfac/3/a` or `model/0/params`.
//!
//! The module also defines the **tensor-blob wire format** (`0xCB`) used
//! when restored factor state is redistributed between ranks over the
//! fallible collectives. Its parser follows the hostile-length rules of
//! `compso_core::wire`: every count is validated against the bytes
//! actually present before anything is allocated, and trailing bytes are
//! rejected.

use crate::CkptError;
use compso_core::wire::{checked_count, Reader, WireError, Writer};
use compso_tensor::Matrix;

/// Wire/manifest magic for a tensor blob (re-exported from the
/// central `compso_core::wire::magic` registry).
pub use compso_core::wire::magic::MAGIC_TENSORS;
/// Tensor-blob format version.
pub const TENSORS_VERSION: u16 = 1;
/// Longest accepted tensor name in bytes (hostile-input cap).
pub const NAME_MAX: usize = 200;
/// Most tensors a single blob / rank file may carry (hostile-input cap).
pub const TENSORS_MAX: usize = 1 << 16;

/// Element type of a checkpoint tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dtype {
    /// 32-bit float (weights, factors, moments).
    F32,
    /// 64-bit float (Cholesky factors, Box-Muller spares).
    F64,
    /// 64-bit unsigned (RNG words, counters, ownership maps).
    U64,
}

impl Dtype {
    /// Stable wire id.
    pub fn tag(self) -> u8 {
        match self {
            Dtype::F32 => 0,
            Dtype::F64 => 1,
            Dtype::U64 => 2,
        }
    }

    /// Inverse of [`Dtype::tag`].
    pub fn from_tag(tag: u8) -> Option<Dtype> {
        match tag {
            0 => Some(Dtype::F32),
            1 => Some(Dtype::F64),
            2 => Some(Dtype::U64),
            _ => None,
        }
    }

    /// Bytes per element.
    pub fn width(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 | Dtype::U64 => 8,
        }
    }
}

/// Typed tensor payload.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorData {
    F32(Vec<f32>),
    F64(Vec<f64>),
    U64(Vec<u64>),
}

impl TensorData {
    /// Element type.
    pub fn dtype(&self) -> Dtype {
        match self {
            TensorData::F32(_) => Dtype::F32,
            TensorData::F64(_) => Dtype::F64,
            TensorData::U64(_) => Dtype::U64,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::F64(v) => v.len(),
            TensorData::U64(v) => v.len(),
        }
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Little-endian raw bytes — the exact payload the lossless codec
    /// compresses. Bit-exact by construction: no float formatting, no
    /// rounding, just the IEEE words.
    pub fn raw_bytes(&self) -> Vec<u8> {
        match self {
            TensorData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            TensorData::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            TensorData::U64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
        }
    }

    /// Inverse of [`TensorData::raw_bytes`]; errors when the byte length
    /// is not a multiple of the element width.
    pub fn from_raw(dtype: Dtype, bytes: &[u8]) -> Result<TensorData, CkptError> {
        if !bytes.len().is_multiple_of(dtype.width()) {
            return Err(CkptError::Corrupt("tensor byte length vs dtype width"));
        }
        Ok(match dtype {
            Dtype::F32 => TensorData::F32(
                bytes
                    .chunks_exact(4)
                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect(),
            ),
            Dtype::F64 => TensorData::F64(
                bytes
                    .chunks_exact(8)
                    .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
                    .collect(),
            ),
            Dtype::U64 => TensorData::U64(
                bytes
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .collect(),
            ),
        })
    }
}

/// One named 2-D tensor (vectors use `rows == 1`).
#[derive(Clone, Debug, PartialEq)]
pub struct TensorEntry {
    /// Slash-namespaced name, e.g. `kfac/3/eig_a/vectors`.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count (`rows * cols` must equal the element count).
    pub cols: usize,
    /// Payload.
    pub data: TensorData,
}

impl TensorEntry {
    /// A vector-shaped entry (`1 × n`).
    pub fn vector(name: impl Into<String>, data: TensorData) -> Self {
        let n = data.len();
        TensorEntry {
            name: name.into(),
            rows: 1,
            cols: n,
            data,
        }
    }

    /// A matrix-shaped f32 entry cloned from a [`Matrix`].
    pub fn matrix(name: impl Into<String>, m: &Matrix) -> Self {
        TensorEntry {
            name: name.into(),
            rows: m.rows(),
            cols: m.cols(),
            data: TensorData::F32(m.as_slice().to_vec()),
        }
    }

    /// Reassembles a [`Matrix`] from an f32 entry.
    pub fn to_matrix(&self) -> Result<Matrix, CkptError> {
        match &self.data {
            TensorData::F32(v) => {
                if v.len() != self.rows * self.cols {
                    return Err(CkptError::Corrupt("tensor shape vs element count"));
                }
                Ok(Matrix::from_vec(self.rows, self.cols, v.clone()))
            }
            _ => Err(CkptError::Corrupt("expected an f32 tensor")),
        }
    }
}

/// One rank's contribution to a coordinated checkpoint.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Global training step the snapshot was taken at.
    pub step: u64,
    /// Named tensors, in serialization order.
    pub tensors: Vec<TensorEntry>,
}

impl Snapshot {
    /// An empty snapshot at `step`.
    pub fn new(step: u64) -> Self {
        Snapshot {
            step,
            tensors: Vec::new(),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TensorEntry) {
        self.tensors.push(entry);
    }

    /// Appends a matrix-shaped f32 tensor.
    pub fn push_matrix(&mut self, name: impl Into<String>, m: &Matrix) {
        self.push(TensorEntry::matrix(name, m));
    }

    /// Appends a `1 × n` u64 vector.
    pub fn push_u64s(&mut self, name: impl Into<String>, v: Vec<u64>) {
        self.push(TensorEntry::vector(name, TensorData::U64(v)));
    }

    /// Appends a `1 × n` f64 vector.
    pub fn push_f64s(&mut self, name: impl Into<String>, v: Vec<f64>) {
        self.push(TensorEntry::vector(name, TensorData::F64(v)));
    }

    /// Looks an entry up by exact name.
    pub fn get(&self, name: &str) -> Option<&TensorEntry> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Required lookup: errors when the name is missing.
    pub fn require(&self, name: &str) -> Result<&TensorEntry, CkptError> {
        self.get(name)
            .ok_or(CkptError::Corrupt("missing checkpoint tensor"))
    }

    /// Required f32 matrix by name.
    pub fn require_matrix(&self, name: &str) -> Result<Matrix, CkptError> {
        self.require(name)?.to_matrix()
    }

    /// Required u64 vector by name.
    pub fn require_u64s(&self, name: &str) -> Result<&[u64], CkptError> {
        match &self.require(name)?.data {
            TensorData::U64(v) => Ok(v),
            _ => Err(CkptError::Corrupt("expected a u64 tensor")),
        }
    }

    /// Required f64 vector by name.
    pub fn require_f64s(&self, name: &str) -> Result<&[f64], CkptError> {
        match &self.require(name)?.data {
            TensorData::F64(v) => Ok(v),
            _ => Err(CkptError::Corrupt("expected an f64 tensor")),
        }
    }

    /// Entries whose name starts with `prefix`, in order.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TensorEntry> {
        self.tensors
            .iter()
            .filter(move |t| t.name.starts_with(prefix))
    }

    /// Total raw (uncompressed) payload bytes across all tensors.
    pub fn raw_bytes(&self) -> u64 {
        self.tensors
            .iter()
            .map(|t| (t.data.len() * t.data.dtype().width()) as u64)
            .sum()
    }
}

/// Serializes a tensor list into the `0xCB` blob format (used for the
/// restore-time redistribution collective; the on-disk path stores each
/// tensor payload separately — see `store`).
pub fn encode_tensors(tensors: &[TensorEntry]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 + tensors.iter().map(|t| t.data.len() * 8).sum::<usize>());
    w.u8(MAGIC_TENSORS);
    w.u16(TENSORS_VERSION);
    w.u32(tensors.len() as u32);
    for t in tensors {
        debug_assert!(t.name.len() <= NAME_MAX, "tensor name too long: {}", t.name);
        w.u16(t.name.len() as u16);
        w.bytes(t.name.as_bytes());
        w.u8(t.data.dtype().tag());
        w.u64(t.rows as u64);
        w.u64(t.cols as u64);
        w.block(&t.data.raw_bytes());
    }
    w.into_bytes()
}

/// Parses a `0xCB` tensor blob. Hostile-length hardened: rejects bad
/// magic/version, caps the tensor count against the bytes present,
/// validates every name length, shape product, and payload length before
/// allocating, and refuses trailing bytes.
pub fn decode_tensors(bytes: &[u8]) -> Result<Vec<TensorEntry>, CkptError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != MAGIC_TENSORS {
        return Err(CkptError::Corrupt("tensor blob magic"));
    }
    if r.u16()? != TENSORS_VERSION {
        return Err(CkptError::Corrupt("tensor blob version"));
    }
    let n = r.u32()? as usize;
    if n > TENSORS_MAX {
        return Err(CkptError::Corrupt("tensor count cap"));
    }
    // Each tensor costs at least name_len(2) + dtype(1) + shape(16) +
    // block length prefix(8) = 27 bytes; a hostile count cannot outrun
    // the buffer.
    if n > r.remaining() / 27 {
        return Err(CkptError::Corrupt("tensor count vs buffer"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_tensor_entry(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(CkptError::Wire(WireError::Invalid("trailing blob bytes")));
    }
    Ok(out)
}

fn decode_tensor_entry(r: &mut Reader<'_>) -> Result<TensorEntry, CkptError> {
    let name_len = r.u16()? as usize;
    if name_len > NAME_MAX {
        return Err(CkptError::Corrupt("tensor name length"));
    }
    let name = std::str::from_utf8(r.bytes(name_len)?)
        .map_err(|_| CkptError::Corrupt("tensor name utf8"))?
        .to_string();
    let dtype = Dtype::from_tag(r.u8()?).ok_or(CkptError::Corrupt("tensor dtype tag"))?;
    let (rows, cols, elems) = checked_shape(r.u64()?, r.u64()?)?;
    let payload = r.block()?;
    if payload.len() != elems * dtype.width() {
        return Err(CkptError::Corrupt("tensor payload length vs shape"));
    }
    let data = TensorData::from_raw(dtype, payload)?;
    Ok(TensorEntry {
        name,
        rows,
        cols,
        data,
    })
}

/// Validates a `rows × cols` shape: both dimensions and their product
/// must pass the global element cap (`compso_core::wire::checked_count`).
pub fn checked_shape(rows: u64, cols: u64) -> Result<(usize, usize, usize), CkptError> {
    let rows = checked_count(rows).map_err(CkptError::Wire)?;
    let cols = checked_count(cols).map_err(CkptError::Wire)?;
    let elems = rows
        .checked_mul(cols)
        .ok_or(CkptError::Corrupt("tensor shape overflow"))?;
    checked_count(elems as u64).map_err(CkptError::Wire)?;
    Ok((rows, cols, elems))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TensorEntry> {
        vec![
            TensorEntry::matrix(
                "model/0/params",
                &Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32),
            ),
            TensorEntry::vector("rng/state", TensorData::U64(vec![1, 2, 3, 4])),
            TensorEntry::vector("chol/l", TensorData::F64(vec![0.5, -1.25, 3.75])),
            TensorEntry::vector("empty", TensorData::F32(Vec::new())),
        ]
    }

    #[test]
    fn blob_roundtrip_is_exact() {
        let tensors = sample();
        let blob = encode_tensors(&tensors);
        assert_eq!(decode_tensors(&blob).unwrap(), tensors);
    }

    #[test]
    fn blob_rejects_truncation_everywhere() {
        let blob = encode_tensors(&sample());
        for cut in 0..blob.len() {
            assert!(decode_tensors(&blob[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn blob_rejects_trailing_bytes() {
        let mut blob = encode_tensors(&sample());
        blob.push(0);
        assert!(decode_tensors(&blob).is_err());
    }

    #[test]
    fn hostile_tensor_count_cannot_outrun_buffer() {
        let mut w = Writer::new();
        w.u8(MAGIC_TENSORS);
        w.u16(TENSORS_VERSION);
        w.u32(1 << 15);
        let bytes = w.into_bytes();
        assert!(decode_tensors(&bytes).is_err());
    }

    #[test]
    fn hostile_shape_product_rejected() {
        let mut w = Writer::new();
        w.u8(MAGIC_TENSORS);
        w.u16(TENSORS_VERSION);
        w.u32(1);
        w.u16(1);
        w.bytes(b"x");
        w.u8(Dtype::F32.tag());
        w.u64(1 << 20);
        w.u64(1 << 20); // product 2^40 >> element cap
        w.block(&[]);
        assert!(decode_tensors(&w.into_bytes()).is_err());
    }

    #[test]
    fn raw_bytes_roundtrip_preserves_bits() {
        let data = TensorData::F32(vec![f32::MIN_POSITIVE, -0.0, 1.5e-40, f32::MAX]);
        let back = TensorData::from_raw(Dtype::F32, &data.raw_bytes()).unwrap();
        assert_eq!(back, data);
        let d64 = TensorData::F64(vec![f64::EPSILON, -1.0 / 3.0]);
        assert_eq!(
            TensorData::from_raw(Dtype::F64, &d64.raw_bytes()).unwrap(),
            d64
        );
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let mut s = Snapshot::new(7);
        s.push_matrix("m", &Matrix::identity(2));
        s.push_u64s("u", vec![9]);
        s.push_f64s("f", vec![0.25]);
        assert_eq!(s.require_matrix("m").unwrap(), Matrix::identity(2));
        assert_eq!(s.require_u64s("u").unwrap(), &[9]);
        assert_eq!(s.require_f64s("f").unwrap(), &[0.25]);
        assert!(s.require("missing").is_err());
        assert_eq!(s.with_prefix("m").count(), 1);
        assert_eq!(s.raw_bytes(), 16 + 8 + 8);
    }
}
