//! The versioned checkpoint manifest.
//!
//! A coordinated snapshot directory holds one payload file per rank
//! (`rank-R.bin`) plus a single `MANIFEST` written **last**: until the
//! manifest exists the snapshot does not exist, which is what makes the
//! tmp-dir + fsync + rename save protocol atomic (a torn save has no
//! manifest and is never loadable).
//!
//! The manifest records, per rank file, the byte length and CRC32 of the
//! whole file plus one [`TensorMeta`] per tensor: name, dtype, shape,
//! byte offset / encoded length inside the file, raw (decoded) length,
//! and the CRC32 of the raw bytes. Offsets are required to tile the file
//! exactly (contiguous, in order, summing to `file_len`), so a hostile
//! manifest cannot alias or leapfrog payload ranges.
//!
//! The parser follows the hostile-length discipline of
//! `compso_core::wire`: magic/version checked first, every count bounded
//! by the bytes actually present, every shape product overflow-checked,
//! and trailing bytes rejected.

use crate::snapshot::{checked_shape, Dtype, NAME_MAX, TENSORS_MAX};
use crate::CkptError;
use compso_core::wire::{Reader, WireError, Writer};

/// Manifest magic byte (re-exported from the central
/// `compso_core::wire::magic` registry).
pub use compso_core::wire::magic::MAGIC_MANIFEST;
/// Manifest format version. Version 2 added the membership `epoch`
/// field (elastic training).
pub const MANIFEST_VERSION: u16 = 2;
/// Largest accepted world size (hostile-input cap).
pub const WORLD_MAX: usize = 4096;

/// Per-tensor index entry inside one rank's payload file.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorMeta {
    /// Tensor name (matches the in-memory [`crate::TensorEntry`] name).
    pub name: String,
    /// Element type.
    pub dtype: Dtype,
    /// Rows.
    pub rows: u64,
    /// Columns.
    pub cols: u64,
    /// Byte offset of the encoded payload inside the rank file.
    pub offset: u64,
    /// Encoded (on-disk) payload length in bytes.
    pub enc_len: u64,
    /// Raw (decoded) payload length in bytes.
    pub raw_len: u64,
    /// CRC32 of the raw decoded bytes (end-to-end integrity, beyond the
    /// per-payload `0xCF` frame that covers only the encoded bytes).
    pub crc32: u32,
}

/// One rank's payload file description.
#[derive(Clone, Debug, PartialEq)]
pub struct RankFileMeta {
    /// Owning rank.
    pub rank: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// CRC32 of the whole file.
    pub file_crc32: u32,
    /// Per-tensor index, in file order.
    pub tensors: Vec<TensorMeta>,
}

/// The coordinated snapshot manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Global training step of the snapshot.
    pub step: u64,
    /// World size the snapshot was taken at. Restore into a *different*
    /// world size reshards the owner-sharded factor files across the new
    /// ownership map (striped by file index modulo the new size) and
    /// drops rank-local state; an equal world size restores verbatim.
    pub world_size: u32,
    /// Fingerprint of the training configuration (seed, hyperparameters,
    /// compressor). A mismatch at restore is rejected: resuming under a
    /// different config could not be bit-identical anyway.
    pub fingerprint: u64,
    /// Membership epoch at save time (0 for a group that never changed
    /// view). Restored groups resume epoch numbering from here.
    pub epoch: u64,
    /// One entry per rank, in rank order `0..world_size`.
    pub ranks: Vec<RankFileMeta>,
}

impl RankFileMeta {
    /// Serializes one rank's file description (also used standalone for
    /// the save-time metadata all-gather).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.tensors.len() * 64);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    fn encode_into(&self, w: &mut Writer) {
        w.u32(self.rank);
        w.u64(self.file_len);
        w.u32(self.file_crc32);
        w.u32(self.tensors.len() as u32);
        for t in &self.tensors {
            debug_assert!(t.name.len() <= NAME_MAX);
            w.u16(t.name.len() as u16);
            w.bytes(t.name.as_bytes());
            w.u8(t.dtype.tag());
            w.u64(t.rows);
            w.u64(t.cols);
            w.u64(t.offset);
            w.u64(t.enc_len);
            w.u64(t.raw_len);
            w.u32(t.crc32);
        }
    }

    /// Parses a standalone rank-file description.
    pub fn decode(bytes: &[u8]) -> Result<RankFileMeta, CkptError> {
        let mut r = Reader::new(bytes);
        let meta = Self::decode_from(&mut r)?;
        if !r.is_exhausted() {
            return Err(CkptError::Wire(WireError::Invalid(
                "trailing rank-meta bytes",
            )));
        }
        Ok(meta)
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<RankFileMeta, CkptError> {
        let rank = r.u32()?;
        let file_len = r.u64()?;
        let file_crc32 = r.u32()?;
        let n = r.u32()? as usize;
        if n > TENSORS_MAX {
            return Err(CkptError::Corrupt("manifest tensor count cap"));
        }
        // Each tensor entry costs at least 2 + 1 + 8*5 + 4 = 47 bytes.
        if n > r.remaining() / 47 {
            return Err(CkptError::Corrupt("manifest tensor count vs buffer"));
        }
        let mut tensors = Vec::with_capacity(n);
        let mut cursor = 0u64;
        for _ in 0..n {
            let name_len = r.u16()? as usize;
            if name_len > NAME_MAX {
                return Err(CkptError::Corrupt("manifest name length"));
            }
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|_| CkptError::Corrupt("manifest name utf8"))?
                .to_string();
            let dtype = Dtype::from_tag(r.u8()?).ok_or(CkptError::Corrupt("manifest dtype tag"))?;
            let rows = r.u64()?;
            let cols = r.u64()?;
            let (_, _, elems) = checked_shape(rows, cols)?;
            let offset = r.u64()?;
            let enc_len = r.u64()?;
            let raw_len = r.u64()?;
            let crc = r.u32()?;
            if raw_len != (elems * dtype.width()) as u64 {
                return Err(CkptError::Corrupt("manifest raw length vs shape"));
            }
            // Payloads must tile the file contiguously and in order: no
            // gaps, no overlaps, no leapfrogging.
            if offset != cursor {
                return Err(CkptError::Corrupt("manifest offset not contiguous"));
            }
            cursor = offset
                .checked_add(enc_len)
                .ok_or(CkptError::Corrupt("manifest offset overflow"))?;
            if cursor > file_len {
                return Err(CkptError::Corrupt("manifest payload past file end"));
            }
            tensors.push(TensorMeta {
                name,
                dtype,
                rows,
                cols,
                offset,
                enc_len,
                raw_len,
                crc32: crc,
            });
        }
        if cursor != file_len {
            return Err(CkptError::Corrupt("manifest payloads do not tile file"));
        }
        Ok(RankFileMeta {
            rank,
            file_len,
            file_crc32,
            tensors,
        })
    }
}

impl Manifest {
    /// Serializes the manifest (the store wraps the result in a `0xCF`
    /// CRC frame before writing it to disk).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(128);
        w.u8(MAGIC_MANIFEST);
        w.u16(MANIFEST_VERSION);
        w.u64(self.step);
        w.u32(self.world_size);
        w.u64(self.fingerprint);
        w.u64(self.epoch);
        for rank in &self.ranks {
            rank.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Parses and validates a manifest. Beyond the per-rank checks this
    /// enforces that exactly `world_size` rank entries are present, in
    /// rank order `0..world_size`.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, CkptError> {
        let mut r = Reader::new(bytes);
        if r.u8()? != MAGIC_MANIFEST {
            return Err(CkptError::Corrupt("manifest magic"));
        }
        if r.u16()? != MANIFEST_VERSION {
            return Err(CkptError::Corrupt("manifest version"));
        }
        let step = r.u64()?;
        let world_size = r.u32()?;
        if world_size == 0 || world_size as usize > WORLD_MAX {
            return Err(CkptError::Corrupt("manifest world size"));
        }
        let fingerprint = r.u64()?;
        let epoch = r.u64()?;
        // Each rank entry costs at least 4 + 8 + 4 + 4 = 20 bytes.
        if world_size as usize > r.remaining() / 20 + 1 {
            return Err(CkptError::Corrupt("manifest rank count vs buffer"));
        }
        let mut ranks = Vec::with_capacity(world_size as usize);
        for expect in 0..world_size {
            let meta = RankFileMeta::decode_from(&mut r)?;
            if meta.rank != expect {
                return Err(CkptError::Corrupt("manifest ranks out of order"));
            }
            ranks.push(meta);
        }
        if !r.is_exhausted() {
            return Err(CkptError::Wire(WireError::Invalid(
                "trailing manifest bytes",
            )));
        }
        Ok(Manifest {
            step,
            world_size,
            fingerprint,
            epoch,
            ranks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let t = |name: &str, offset: u64, enc: u64, elems: u64| TensorMeta {
            name: name.to_string(),
            dtype: Dtype::F32,
            rows: 1,
            cols: elems,
            offset,
            enc_len: enc,
            raw_len: elems * 4,
            crc32: 0xDEAD_BEEF,
        };
        Manifest {
            step: 42,
            world_size: 2,
            fingerprint: 0x1234_5678_9ABC_DEF0,
            epoch: 3,
            ranks: vec![
                RankFileMeta {
                    rank: 0,
                    file_len: 30,
                    file_crc32: 1,
                    tensors: vec![t("a", 0, 10, 4), t("b", 10, 20, 8)],
                },
                RankFileMeta {
                    rank: 1,
                    file_len: 5,
                    file_crc32: 2,
                    tensors: vec![t("c", 0, 5, 1)],
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_every_truncation() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn manifest_rejects_trailing_bytes() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn manifest_rejects_non_tiling_offsets() {
        let mut m = sample();
        m.ranks[0].tensors[1].offset = 11; // gap after first payload
        assert!(Manifest::decode(&m.encode()).is_err());
        m.ranks[0].tensors[1].offset = 9; // overlap
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn manifest_rejects_payload_past_file_end() {
        let mut m = sample();
        m.ranks[1].tensors[0].enc_len = 6;
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn manifest_rejects_short_file_tiling() {
        let mut m = sample();
        m.ranks[1].file_len = 9; // payloads only cover 5 bytes
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn manifest_rejects_rank_disorder_and_bad_world() {
        let mut m = sample();
        m.ranks.swap(0, 1);
        assert!(Manifest::decode(&m.encode()).is_err());
        let mut m = sample();
        m.world_size = 0;
        assert!(Manifest::decode(&m.encode()).is_err());
    }

    #[test]
    fn rank_meta_standalone_roundtrip() {
        let meta = sample().ranks[0].clone();
        assert_eq!(RankFileMeta::decode(&meta.encode()).unwrap(), meta);
        let mut bytes = meta.encode();
        bytes.push(7);
        assert!(RankFileMeta::decode(&bytes).is_err());
    }

    #[test]
    fn manifest_rejects_raw_len_shape_mismatch() {
        let mut m = sample();
        m.ranks[0].tensors[0].raw_len = 15;
        assert!(Manifest::decode(&m.encode()).is_err());
    }
}
