//! The on-disk checkpoint store: atomic saves, discovery, and GC.
//!
//! Layout under the store root:
//!
//! ```text
//! root/
//!   step-000000000042/          # one committed snapshot
//!     rank-0.bin                # per-rank payload file
//!     rank-1.bin
//!     MANIFEST                  # CRC-framed [`Manifest`], written LAST
//!   .tmp-step-000000000084/     # in-flight save (never loadable)
//! ```
//!
//! The save protocol is tmp-dir + fsync + rename + manifest-last:
//! payload files are written and fsynced inside a hidden `.tmp-` dir,
//! the manifest is written and fsynced there too, and only then is the
//! directory renamed into place (followed by an fsync of the store root
//! so the rename itself is durable). A crash at any intermediate point
//! leaves either a `.tmp-` dir (ignored by discovery, reaped by GC) or
//! a step dir missing its `MANIFEST` (rejected at load); the previous
//! retained snapshot stays loadable throughout.
//!
//! Step directories are named with zero-padded decimal
//! (`step-{:012}`) so lexical order equals numeric order.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::manifest::{Manifest, RankFileMeta, TensorMeta};
use crate::snapshot::{Snapshot, TensorData, TensorEntry};
use crate::CkptError;
use compso_core::encoders::Codec;
use compso_core::kernels::CODEC_BLOCK;
use compso_core::wire::{crc32, frame_checksummed, unframe_checksummed};
use rayon::prelude::*;

/// Name of the manifest file inside a committed step directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Accounting for one rank-file write (feeds the `ckpt/*` counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteStats {
    /// Encoded bytes written to disk (the rank file length).
    pub bytes_written: u64,
    /// Raw (pre-compression) tensor bytes the file represents.
    pub raw_bytes: u64,
}

/// A directory of coordinated snapshots with bounded retention.
pub struct CheckpointStore {
    root: PathBuf,
    retain_last: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`, keeping at
    /// most `retain_last` committed snapshots after [`Self::gc`].
    pub fn new(root: impl Into<PathBuf>, retain_last: usize) -> Result<CheckpointStore, CkptError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CheckpointStore {
            root,
            retain_last: retain_last.max(1),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn step_dir(&self, step: u64) -> PathBuf {
        self.root.join(format!("step-{step:012}"))
    }

    fn tmp_dir(&self, step: u64) -> PathBuf {
        self.root.join(format!(".tmp-step-{step:012}"))
    }

    /// Creates a fresh in-flight directory for `step`, clearing any
    /// stale leftover from a previous crashed save of the same step.
    pub fn prepare_tmp(&self, step: u64) -> Result<(), CkptError> {
        let tmp = self.tmp_dir(step);
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir_all(&tmp)?;
        Ok(())
    }

    /// Encodes and writes one rank's payload file into the in-flight
    /// directory of `step`, fsyncing it before returning.
    ///
    /// Each tensor is encoded independently (and in parallel): raw
    /// little-endian bytes → lossless block codec → `0xCF` CRC frame.
    /// The returned [`RankFileMeta`] indexes the concatenated file and
    /// carries the CRC of both the whole file and each tensor's raw
    /// bytes, so load can verify end-to-end integrity.
    pub fn write_rank_file(
        &self,
        step: u64,
        rank: u32,
        snapshot: &Snapshot,
        codec: Codec,
    ) -> Result<(RankFileMeta, WriteStats), CkptError> {
        let encoded: Vec<(Vec<u8>, u64, u32)> = snapshot
            .tensors
            .par_iter()
            .map(|t| {
                let raw = t.data.raw_bytes();
                let framed = frame_checksummed(&codec.encode_blocks(&raw, CODEC_BLOCK));
                (framed, raw.len() as u64, crc32(&raw))
            })
            .collect();
        let mut tensors = Vec::with_capacity(snapshot.tensors.len());
        let mut file = Vec::new();
        let mut raw_total = 0u64;
        for (t, (framed, raw_len, raw_crc)) in snapshot.tensors.iter().zip(&encoded) {
            tensors.push(TensorMeta {
                name: t.name.clone(),
                dtype: t.data.dtype(),
                rows: t.rows as u64,
                cols: t.cols as u64,
                offset: file.len() as u64,
                enc_len: framed.len() as u64,
                raw_len: *raw_len,
                crc32: *raw_crc,
            });
            file.extend_from_slice(framed);
            raw_total += raw_len;
        }
        let meta = RankFileMeta {
            rank,
            file_len: file.len() as u64,
            file_crc32: crc32(&file),
            tensors,
        };
        let path = self.tmp_dir(step).join(format!("rank-{rank}.bin"));
        let mut f = File::create(&path)?;
        f.write_all(&file)?;
        f.sync_all()?;
        Ok((
            meta,
            WriteStats {
                bytes_written: file.len() as u64,
                raw_bytes: raw_total,
            },
        ))
    }

    /// Writes the manifest (CRC-framed) into the in-flight directory,
    /// fsyncs it, atomically renames the directory into place, and
    /// fsyncs the store root so the rename is durable. After this
    /// returns the snapshot is loadable; before it, it never is.
    ///
    /// Returns the manifest's on-disk byte length.
    pub fn commit(&self, manifest: &Manifest) -> Result<u64, CkptError> {
        let tmp = self.tmp_dir(manifest.step);
        let framed = frame_checksummed(&manifest.encode());
        let path = tmp.join(MANIFEST_FILE);
        let mut f = File::create(&path)?;
        f.write_all(&framed)?;
        f.sync_all()?;
        let final_dir = self.step_dir(manifest.step);
        if final_dir.exists() {
            // Re-saving the same step (e.g. crash loop): replace.
            fs::remove_dir_all(&final_dir)?;
        }
        fs::rename(&tmp, &final_dir)?;
        // Persist the rename itself.
        File::open(&self.root)?.sync_all()?;
        Ok(framed.len() as u64)
    }

    /// Lists committed snapshot steps in ascending order. Only
    /// directories named `step-*` with a parseable step number count;
    /// `.tmp-*` leftovers and foreign files are ignored.
    pub fn list_steps(&self) -> Result<Vec<u64>, CkptError> {
        let mut steps = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name();
            let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("step-")) else {
                continue;
            };
            if let Ok(step) = rest.parse::<u64>() {
                steps.push(step);
            }
        }
        steps.sort_unstable();
        Ok(steps)
    }

    /// The newest committed step, if any.
    pub fn latest(&self) -> Result<Option<u64>, CkptError> {
        Ok(self.list_steps()?.pop())
    }

    /// Reads and validates the manifest of a committed snapshot. A
    /// step directory without a readable, CRC-valid manifest is not a
    /// snapshot (this is what makes torn saves unloadable).
    pub fn load_manifest(&self, step: u64) -> Result<Manifest, CkptError> {
        let bytes = fs::read(self.step_dir(step).join(MANIFEST_FILE))?;
        let payload = unframe_checksummed(&bytes)?;
        let m = Manifest::decode(payload)?;
        if m.step != step {
            return Err(CkptError::Corrupt("manifest step vs directory"));
        }
        Ok(m)
    }

    /// Loads and decodes one rank's payload file of a committed
    /// snapshot, verifying the whole-file CRC, each tensor's frame,
    /// and each tensor's raw-byte CRC against the manifest.
    pub fn load_rank(
        &self,
        step: u64,
        manifest: &Manifest,
        rank: u32,
    ) -> Result<Snapshot, CkptError> {
        let meta = manifest
            .ranks
            .iter()
            .find(|r| r.rank == rank)
            .ok_or(CkptError::Corrupt("rank missing from manifest"))?;
        let path = self.step_dir(step).join(format!("rank-{rank}.bin"));
        let file = fs::read(&path)?;
        if file.len() as u64 != meta.file_len {
            return Err(CkptError::Corrupt("rank file length vs manifest"));
        }
        if crc32(&file) != meta.file_crc32 {
            return Err(CkptError::Corrupt("rank file crc"));
        }
        let tensors: Vec<Result<TensorEntry, CkptError>> = meta
            .tensors
            .par_iter()
            .map(|t| {
                // Offsets were validated to tile the file at manifest
                // decode, so this slice is always in bounds.
                let framed = &file[t.offset as usize..(t.offset + t.enc_len) as usize];
                let raw = Codec::decode_blocks(unframe_checksummed(framed)?)?;
                if raw.len() as u64 != t.raw_len {
                    return Err(CkptError::Corrupt("decoded length vs manifest"));
                }
                if crc32(&raw) != t.crc32 {
                    return Err(CkptError::Corrupt("decoded payload crc"));
                }
                let data = TensorData::from_raw(t.dtype, &raw)?;
                Ok(TensorEntry {
                    name: t.name.clone(),
                    rows: t.rows as usize,
                    cols: t.cols as usize,
                    data,
                })
            })
            .collect();
        let mut snapshot = Snapshot::new(manifest.step);
        for t in tensors {
            snapshot.tensors.push(t?);
        }
        Ok(snapshot)
    }

    /// Removes committed snapshots beyond the newest `retain_last` and
    /// any stale `.tmp-*` directories. Returns how many directories
    /// were removed.
    pub fn gc(&self) -> Result<usize, CkptError> {
        let steps = self.list_steps()?;
        let mut removed = 0;
        if steps.len() > self.retain_last {
            for &step in &steps[..steps.len() - self.retain_last] {
                fs::remove_dir_all(self.step_dir(step))?;
                removed += 1;
            }
        }
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let is_tmp = name.to_str().is_some_and(|n| n.starts_with(".tmp-step-"));
            if is_tmp && entry.file_type()?.is_dir() {
                fs::remove_dir_all(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::Matrix;

    fn temp_root(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("compso-ckpt-{tag}-{pid}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(step: u64, seed: u64) -> Snapshot {
        let mut rng = compso_tensor::Rng::new(seed);
        let mut s = Snapshot::new(step);
        let m = Matrix::from_fn(5, 7, |_, _| rng.normal_f64() as f32);
        s.push_matrix("model/layer0", &m);
        s.push(TensorEntry::vector(
            "rng",
            TensorData::U64(vec![1, 2, 3, 4]),
        ));
        s.push_f64s("chol", vec![0.5, -1.25, f64::MIN_POSITIVE]);
        s
    }

    fn save(store: &CheckpointStore, step: u64, snaps: &[Snapshot]) -> Result<Manifest, CkptError> {
        store.prepare_tmp(step)?;
        let mut ranks = Vec::new();
        for (r, snap) in snaps.iter().enumerate() {
            let (meta, _) = store.write_rank_file(step, r as u32, snap, Codec::Zstd)?;
            ranks.push(meta);
        }
        let manifest = Manifest {
            step,
            world_size: snaps.len() as u32,
            fingerprint: 0xABCD,
            epoch: 0,
            ranks,
        };
        store.commit(&manifest)?;
        Ok(manifest)
    }

    #[test]
    fn save_load_roundtrip_bit_exact() {
        let root = temp_root("roundtrip");
        let store = CheckpointStore::new(&root, 2).unwrap();
        let snaps = [sample_snapshot(9, 1), sample_snapshot(9, 2)];
        let manifest = save(&store, 9, &snaps).unwrap();
        assert_eq!(store.latest().unwrap(), Some(9));
        let reread = store.load_manifest(9).unwrap();
        assert_eq!(reread, manifest);
        for (r, snap) in snaps.iter().enumerate() {
            let loaded = store.load_rank(9, &reread, r as u32).unwrap();
            assert_eq!(&loaded.tensors, &snap.tensors);
            assert_eq!(loaded.step, 9);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_save_is_never_loadable_and_previous_survives() {
        let root = temp_root("torn");
        let store = CheckpointStore::new(&root, 4).unwrap();
        let old = [sample_snapshot(5, 3)];
        save(&store, 5, &old).unwrap();
        // A crash mid-save: payload written, manifest never committed.
        store.prepare_tmp(10).unwrap();
        store
            .write_rank_file(10, 0, &sample_snapshot(10, 4), Codec::Zstd)
            .unwrap();
        // The torn save is invisible...
        assert_eq!(store.list_steps().unwrap(), vec![5]);
        assert!(store.load_manifest(10).is_err());
        // ...and the previous snapshot still restores.
        let m = store.load_manifest(5).unwrap();
        let loaded = store.load_rank(5, &m, 0).unwrap();
        assert_eq!(&loaded.tensors, &old[0].tensors);
        // GC reaps the leftover tmp dir.
        assert!(store.gc().unwrap() >= 1);
        assert!(!root.join(".tmp-step-000000000010").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn step_dir_without_manifest_is_not_a_snapshot() {
        let root = temp_root("nomanifest");
        let store = CheckpointStore::new(&root, 4).unwrap();
        save(&store, 3, &[sample_snapshot(3, 5)]).unwrap();
        fs::remove_file(root.join("step-000000000003").join(MANIFEST_FILE)).unwrap();
        assert!(store.load_manifest(3).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_retains_only_newest() {
        let root = temp_root("gc");
        let store = CheckpointStore::new(&root, 2).unwrap();
        for step in [1u64, 2, 3, 4] {
            save(&store, step, &[sample_snapshot(step, step)]).unwrap();
        }
        assert_eq!(store.gc().unwrap(), 2);
        assert_eq!(store.list_steps().unwrap(), vec![3, 4]);
        // Survivors still load.
        let m = store.load_manifest(4).unwrap();
        assert!(store.load_rank(4, &m, 0).is_ok());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_payload_byte_is_rejected() {
        let root = temp_root("corrupt");
        let store = CheckpointStore::new(&root, 2).unwrap();
        save(&store, 7, &[sample_snapshot(7, 6)]).unwrap();
        let path = root.join("step-000000000007").join("rank-0.bin");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let m = store.load_manifest(7).unwrap();
        assert!(store.load_rank(7, &m, 0).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_step_must_match_directory() {
        let root = temp_root("stepmatch");
        let store = CheckpointStore::new(&root, 2).unwrap();
        save(&store, 11, &[sample_snapshot(11, 7)]).unwrap();
        // Rename the committed dir so the embedded step disagrees.
        fs::rename(
            root.join("step-000000000011"),
            root.join("step-000000000012"),
        )
        .unwrap();
        assert!(store.load_manifest(12).is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
