//! The lexer's foundational contract, checked against the real world:
//! token spans exactly tile every source file in this workspace —
//! `tokens[0].start == 0`, each token ends where the next begins, the
//! last token ends at `src.len()`, and no token is empty.
//!
//! Two layers:
//! - a straight test over every `.rs` file the walker can see
//!   (including the shims and this crate's own fixture corpus, which
//!   holds deliberately weird code);
//! - a proptest that cuts random char-boundary prefixes of those files
//!   and re-lexes them, exercising totality on *malformed* input
//!   (unterminated strings, half-open block comments, dangling `0x`).

use compso_lint::callgraph::{solve, summarize};
use compso_lint::lexer::lex;
use compso_lint::walker::collect_files;
use compso_lint::SourceFile;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Walk up from this crate to the `[workspace]` root.
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && std::fs::read_to_string(&manifest).is_ok_and(|s| s.contains("[workspace]"))
        {
            return dir;
        }
        assert!(
            dir.pop(),
            "no [workspace] Cargo.toml above CARGO_MANIFEST_DIR"
        );
    }
}

/// Every file the tiling contract covers: the walker's view (shims
/// included) plus this crate's fixture corpus, which the walker skips
/// for *rule* runs but which must still lex cleanly.
fn corpus() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut files = collect_files(&root, true);
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut dirs = vec![fixtures];
    while let Some(dir) = dirs.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(
        files.len() >= 60,
        "workspace corpus shrank: {}",
        files.len()
    );
    files
}

/// Assert the tiling invariant for one source string.
fn assert_tiles(src: &str, what: &dyn std::fmt::Display) {
    let tokens = lex(src);
    if src.is_empty() {
        assert!(tokens.is_empty(), "{what}: tokens on empty input");
        return;
    }
    let mut cursor = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        assert_eq!(t.start, cursor, "{what}: gap/overlap before token {i}");
        assert!(t.end > t.start, "{what}: empty token {i} at byte {cursor}");
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "{what}: tokens stop short of EOF");
}

#[test]
fn token_spans_tile_every_workspace_file() {
    for file in corpus() {
        let src = std::fs::read_to_string(&file).expect("read source file");
        assert_tiles(&src, &file.display());
    }
}

proptest! {
    /// Cut a random char-boundary prefix of a random workspace file and
    /// re-lex: truncation manufactures unterminated literals and
    /// comments, and the lexer must stay total and still tile exactly.
    #[test]
    fn token_spans_tile_random_prefixes(file_pick in 0usize..1usize << 16, cut_pick in 0usize..1usize << 16) {
        let files = corpus();
        let file = &files[file_pick % files.len()];
        let src = std::fs::read_to_string(file).expect("read source file");
        let mut cut = cut_pick % (src.len() + 1);
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &src[..cut];
        assert_tiles(prefix, &format_args!("{}[..{}]", file.display(), cut));
    }

    /// Call-graph construction must be total on the same malformed
    /// inputs: truncation leaves half-open fn bodies, dangling `::`
    /// paths, and unbalanced braces, and `summarize` + `solve` must
    /// neither panic nor loop — the workspace pre-pass runs before any
    /// validity check. Solving the file against itself also pins the
    /// fixpoint's totality on arbitrary call graphs.
    #[test]
    fn callgraph_is_total_on_random_prefixes(file_pick in 0usize..1usize << 16, cut_pick in 0usize..1usize << 16) {
        let files = corpus();
        let file = &files[file_pick % files.len()];
        let src = std::fs::read_to_string(file).expect("read source file");
        let mut cut = cut_pick % (src.len() + 1);
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let sf = SourceFile::new(
            format!("crates/comm/src/truncated_{cut}.rs"),
            src[..cut].to_string(),
        );
        let summary = summarize(&sf);
        let facts = solve(std::slice::from_ref(&summary));
        // Every summarized fn gets solved facts, truncated or not.
        for f in &summary.fns {
            prop_assert!(facts.contains_key(&f.name), "no facts for `{}`", f.name);
        }
    }
}
