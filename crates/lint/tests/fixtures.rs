//! Golden fixture corpus: every rule has at least one firing, one
//! clean, and one suppressed case under `fixtures/<rule>/`.
//!
//! Fixture format:
//! - first line `//# path: crates/…/fake.rs` — the pretend workspace
//!   path the file is analyzed under (rules are path-scoped);
//! - a trailing `//~ rule-name` marker on every line expected to fire
//!   (repeat the marker — `//~ a //~ b` — when several rules fire on
//!   one line).
//!
//! The test asserts the *exact* set of `(line, rule)` diagnostics per
//! fixture — extra findings fail as loudly as missing ones — and pins a
//! handful of full human renderings as goldens.

use compso_lint::{check_file, Context, SourceFile};
use std::path::Path;

/// Names considered registered while analyzing fixtures.
fn fixture_context() -> Context {
    Context::with_names(
        ["comm/recv", "comm/barrier", "kfac/step", "ctrl/decisions"]
            .into_iter()
            .map(String::from),
    )
}

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Parse a fixture: pretend path + expected `(line, rule)` markers.
fn parse_fixture(src: &str, file: &Path) -> (String, Vec<(usize, String)>) {
    let first = src.lines().next().unwrap_or_default();
    let path = first
        .strip_prefix("//# path: ")
        .unwrap_or_else(|| panic!("{}: first line must be `//# path: …`", file.display()))
        .trim()
        .to_string();
    let mut expected = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            for rule in line[at + 3..].split("//~") {
                let rule = rule.trim().to_string();
                assert!(
                    !rule.is_empty(),
                    "{}:{}: empty //~ marker",
                    file.display(),
                    i + 1
                );
                expected.push((i + 1, rule));
            }
        }
    }
    (path, expected)
}

fn check_fixture(file: &Path) -> (Vec<(usize, String)>, Vec<String>) {
    let src = std::fs::read_to_string(file).expect("read fixture");
    let (pretend, expected) = parse_fixture(&src, file);
    let sf = SourceFile::new(pretend, src);
    let mut diags = Vec::new();
    check_file(&sf, &fixture_context(), &mut diags);
    let mut got: Vec<(usize, String)> =
        diags.iter().map(|d| (d.line, d.rule.to_string())).collect();
    got.sort();
    let mut want = expected;
    want.sort();
    assert_eq!(
        got,
        want,
        "{}: diagnostics do not match //~ markers\n  got: {:?}",
        file.display(),
        diags.iter().map(|d| d.human()).collect::<Vec<_>>()
    );
    (got, diags.iter().map(|d| d.human()).collect())
}

#[test]
fn every_rule_has_firing_clean_and_suppressed_fixtures() {
    let root = fixture_root();
    let rules = [
        "wire-magic-registry",
        "no-unwrap-on-comm-path",
        "unchecked-length-prefix",
        "counter-registry",
        "nondeterministic-wire-iteration",
        "collective-order",
        "deterministic-state",
        "float-reduction-order",
        "swallowed-comm-error",
    ];
    for rule in rules {
        let dir = root.join(rule);
        for required in ["fires.rs", "clean.rs", "suppressed.rs"] {
            assert!(
                dir.join(required).is_file(),
                "missing fixture {rule}/{required}"
            );
        }
    }
    // The hygiene rule has no "suppressed" case: suppressing hygiene
    // findings with broken suppressions would be circular.
    assert!(root.join("suppression-hygiene/fires.rs").is_file());
    assert!(root.join("suppression-hygiene/clean.rs").is_file());
}

#[test]
fn all_fixtures_match_their_markers() {
    let root = fixture_root();
    let mut checked = 0;
    let mut dirs: Vec<_> = std::fs::read_dir(&root)
        .expect("fixtures dir")
        .flatten()
        .map(|e| e.path())
        .collect();
    dirs.sort();
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .expect("rule dir")
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "rs"))
            .collect();
        files.sort();
        for file in files {
            let (got, _) = check_fixture(&file);
            let stem = file.file_stem().unwrap().to_string_lossy().to_string();
            match stem.as_str() {
                // Firing fixtures must fire; clean/suppressed must not.
                "fires" | "kfac_scope" => assert!(
                    !got.is_empty(),
                    "{}: expected at least one finding",
                    file.display()
                ),
                _ => assert!(
                    got.is_empty(),
                    "{}: expected no findings, got {got:?}",
                    file.display()
                ),
            }
            checked += 1;
        }
    }
    assert!(checked >= 29, "fixture corpus shrank: {checked} files");
}

#[test]
fn golden_diagnostic_renderings() {
    let root = fixture_root();
    let (_, human) = check_fixture(&root.join("wire-magic-registry/fires.rs"));
    assert_eq!(
        human[0],
        "crates/core/src/fake_codec.rs:5:14: [wire-magic-registry] bare wire magic \
         literal 0xC9 in production code; use the named constant from \
         compso_core::wire::magic"
    );
    let (_, human) = check_fixture(&root.join("no-unwrap-on-comm-path/fires.rs"));
    assert!(human[0].starts_with("crates/comm/src/fake.rs:5:10: [no-unwrap-on-comm-path]"));
    let (_, human) = check_fixture(&root.join("unchecked-length-prefix/fires.rs"));
    assert!(
        human[0].starts_with("crates/core/src/fake_decoder.rs:6:38: [unchecked-length-prefix]"),
        "{human:?}"
    );
    let (_, human) = check_fixture(&root.join("deterministic-state/fires.rs"));
    assert_eq!(
        human[0],
        "crates/ctrl/src/fake_controller.rs:13:5: [deterministic-state] wall-clock \
         read in `sample_jitter`, which is reachable from determinism-critical \
         `observe`; replicas must compute identical state — hoist the impurity out \
         of the cone or annotate lint:allow(deterministic-state): <why this cannot \
         diverge replicas>"
    );
    let (_, human) = check_fixture(&root.join("collective-order/fires.rs"));
    assert!(
        human[0].starts_with("crates/comm/src/fake_group.rs:8:18: [collective-order]"),
        "{human:?}"
    );
    let (_, human) = check_fixture(&root.join("float-reduction-order/fires.rs"));
    assert!(human[0].contains("[float-reduction-order]"), "{human:?}");
    let (_, human) = check_fixture(&root.join("swallowed-comm-error/fires.rs"));
    assert!(human[0].contains("[swallowed-comm-error]"), "{human:?}");
}

#[test]
fn seeded_violation_is_detected_via_library_path() {
    // The CI gate's contract, exercised hermetically: a clean file
    // passes, and seeding a violation into the same pretend crate flips
    // it to a finding with the right location.
    let ctx = fixture_context();
    let clean = SourceFile::new(
        "crates/comm/src/seeded.rs".into(),
        "pub fn ok(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n".into(),
    );
    let mut diags = Vec::new();
    check_file(&clean, &ctx, &mut diags);
    assert!(diags.is_empty());

    let seeded = SourceFile::new(
        "crates/comm/src/seeded.rs".into(),
        "pub fn bad(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n".into(),
    );
    check_file(&seeded, &ctx, &mut diags);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "no-unwrap-on-comm-path");
    assert_eq!((diags[0].line, diags[0].col), (2, 7));
}
