//! The CI gate's core promise, as a plain test: the workspace is clean
//! under every rule. A failure here names the exact file:line:col and
//! rule, so a regression is actionable without running the CLI.

use compso_lint::check_workspace;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file()
            && std::fs::read_to_string(&manifest).is_ok_and(|s| s.contains("[workspace]"))
        {
            return dir;
        }
        assert!(
            dir.pop(),
            "no [workspace] Cargo.toml above CARGO_MANIFEST_DIR"
        );
    }
}

#[test]
fn workspace_is_lint_clean() {
    let diags = check_workspace(&workspace_root()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}", d.human()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
