//! `--fix` contract, end to end over seeded dirty workspaces:
//!
//! - **one-pass convergence**: running `run_fix` once on a tree seeded
//!   with every fixable-rule violation leaves a tree that re-lints
//!   clean;
//! - **idempotence**: a second `run_fix` plans zero edits and rewrites
//!   nothing;
//! - **dry runs** report the same plan without touching disk;
//! - **refusal discipline**: entangled lines (carrying another rule's
//!   finding) and fixes with no error channel are refused with reasons,
//!   never half-applied.

use compso_lint::fix::run_fix;
use compso_lint::{check_workspace, Diagnostic};
use std::path::{Path, PathBuf};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("compso-lint-fix-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write(root: &Path, rel: &str, src: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, src).unwrap();
}

fn read(root: &Path, rel: &str) -> String {
    std::fs::read_to_string(root.join(rel)).unwrap()
}

/// A workspace seeded with one violation of each fixable rule, all on
/// untangled lines inside `Result`-returning functions — the tree
/// `--fix` must fully converge on.
fn seed_dirty(root: &Path) {
    write(
        root,
        "crates/obs/src/names.rs",
        "pub const COMM_RECV: &str = \"comm/recv\";\n\n\
         pub const ALL: &[&str] = &[\n    COMM_RECV,\n];\n",
    );
    write(
        root,
        "crates/core/src/wire.rs",
        "pub mod magic {\n    pub const MAGIC_STREAM_V1: u8 = 0xC5;\n}\n",
    );
    // wire-magic-registry: bare registered magic outside the registry.
    write(
        root,
        "crates/core/src/codec.rs",
        "pub fn tag() -> u8 {\n    0xC5\n}\n",
    );
    // counter-registry: unregistered counter-shaped literal.
    write(
        root,
        "crates/comm/src/metrics.rs",
        "pub fn note(rec: &mut Recorder) {\n    rec.incr(\"comm/frames_sent\");\n}\n",
    );
    // swallowed-comm-error: discarded collective in a Result fn.
    write(
        root,
        "crates/comm/src/teardown.rs",
        "impl Group {\n    pub fn quiesce(&mut self) -> Result<(), CommError> {\n        \
         let _ = self.barrier();\n        Ok(())\n    }\n}\n",
    );
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    let mut rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules.sort();
    rules
}

#[test]
fn fix_converges_in_one_pass_and_is_idempotent() {
    let tmp = Scratch::new("converge");
    let root = tmp.path();
    seed_dirty(root);

    let before = check_workspace(root).unwrap();
    assert_eq!(
        rules_of(&before),
        [
            "counter-registry",
            "swallowed-comm-error",
            "wire-magic-registry"
        ],
        "seeded tree must fire exactly the fixable rules: {before:?}"
    );

    let report = run_fix(root, false).unwrap();
    assert_eq!(rules_of(&report.fixed), rules_of(&before));
    assert!(report.refused.is_empty(), "{:?}", report.refused);
    let mut rewritten = report.rewritten.clone();
    rewritten.sort();
    assert_eq!(
        rewritten,
        [
            "crates/comm/src/metrics.rs",
            "crates/comm/src/teardown.rs",
            "crates/core/src/codec.rs",
            "crates/obs/src/names.rs",
        ]
    );

    // The rewrites are the mechanical ones the rules demand.
    assert!(read(root, "crates/core/src/codec.rs").contains("crate::wire::magic::MAGIC_STREAM_V1"));
    assert!(read(root, "crates/comm/src/metrics.rs")
        .contains("rec.incr(compso_obs::names::COMM_FRAMES_SENT)"));
    let names = read(root, "crates/obs/src/names.rs");
    assert!(names.contains("pub const COMM_FRAMES_SENT: &str = \"comm/frames_sent\";"));
    assert!(names.contains("    COMM_FRAMES_SENT,\n];"), "{names}");
    assert!(read(root, "crates/comm/src/teardown.rs").contains("self.barrier()?;"));

    // One pass converged: the tree re-lints clean…
    let after = check_workspace(root).unwrap();
    assert!(after.is_empty(), "not converged: {after:?}");

    // …and the pass is idempotent: a second run plans nothing.
    let again = run_fix(root, false).unwrap();
    assert!(again.fixed.is_empty(), "{:?}", again.fixed);
    assert!(again.refused.is_empty(), "{:?}", again.refused);
    assert!(again.rewritten.is_empty(), "{:?}", again.rewritten);
}

#[test]
fn dry_run_plans_the_same_fixes_without_touching_disk() {
    let tmp = Scratch::new("dry");
    let root = tmp.path();
    seed_dirty(root);
    let snapshot: Vec<(String, String)> = [
        "crates/obs/src/names.rs",
        "crates/core/src/codec.rs",
        "crates/comm/src/metrics.rs",
        "crates/comm/src/teardown.rs",
    ]
    .into_iter()
    .map(|rel| (rel.to_string(), read(root, rel)))
    .collect();

    let report = run_fix(root, true).unwrap();
    assert_eq!(
        rules_of(&report.fixed),
        [
            "counter-registry",
            "swallowed-comm-error",
            "wire-magic-registry"
        ]
    );
    assert!(report.rewritten.is_empty(), "{:?}", report.rewritten);
    for (rel, before) in &snapshot {
        assert_eq!(&read(root, rel), before, "{rel} changed during a dry run");
    }
}

#[test]
fn entangled_and_channelless_fixes_are_refused() {
    let tmp = Scratch::new("refuse");
    let root = tmp.path();
    write(
        root,
        "crates/obs/src/names.rs",
        "pub const COMM_RECV: &str = \"comm/recv\";\n\n\
         pub const ALL: &[&str] = &[\n    COMM_RECV,\n];\n",
    );
    // `let _ = barrier()` under a rank guard: the line carries BOTH a
    // swallowed-comm-error and a collective-order finding — entangled,
    // so the fix must stand down rather than rewrite half the problem.
    write(
        root,
        "crates/comm/src/drain.rs",
        "impl Group {\n    pub fn drain(&mut self) -> Result<(), CommError> {\n        \
         if self.my_rank == 0 {\n            let _ = self.barrier();\n        }\n        \
         Ok(())\n    }\n}\n",
    );
    // Discard in a `()` function: no error channel to propagate into.
    write(
        root,
        "crates/comm/src/shutdown.rs",
        "impl Group {\n    pub fn shutdown(&mut self) {\n        \
         let _ = self.barrier();\n    }\n}\n",
    );

    let report = run_fix(root, false).unwrap();
    assert!(report.fixed.is_empty(), "{:?}", report.fixed);
    assert!(report.rewritten.is_empty(), "{:?}", report.rewritten);
    let reasons: Vec<(&str, &str, &str)> = report
        .refused
        .iter()
        .map(|(d, why)| (d.path.as_str(), d.rule, why.as_str()))
        .collect();
    assert_eq!(reasons.len(), 2, "{reasons:?}");
    let entangled = reasons
        .iter()
        .find(|(p, _, _)| p.ends_with("drain.rs"))
        .unwrap();
    assert_eq!(entangled.1, "swallowed-comm-error");
    assert!(
        entangled
            .2
            .contains("also carries a `collective-order` finding"),
        "{entangled:?}"
    );
    let channelless = reasons
        .iter()
        .find(|(p, _, _)| p.ends_with("shutdown.rs"))
        .unwrap();
    assert!(
        channelless.2.contains("does not return Result"),
        "{channelless:?}"
    );

    // Refusals leave the tree byte-identical.
    assert!(read(root, "crates/comm/src/drain.rs").contains("let _ = self.barrier();"));
    assert!(read(root, "crates/comm/src/shutdown.rs").contains("let _ = self.barrier();"));
}

#[test]
fn unregistered_magic_is_refused_not_invented() {
    let tmp = Scratch::new("magic");
    let root = tmp.path();
    write(
        root,
        "crates/obs/src/names.rs",
        "pub const COMM_RECV: &str = \"comm/recv\";\n\n\
         pub const ALL: &[&str] = &[\n    COMM_RECV,\n];\n",
    );
    write(
        root,
        "crates/core/src/wire.rs",
        "pub mod magic {\n    pub const MAGIC_STREAM_V1: u8 = 0xC5;\n}\n",
    );
    // 0xCE is in the reserved range but has no registry constant:
    // inventing one is a design decision, not a mechanical fix.
    write(
        root,
        "crates/core/src/codec.rs",
        "pub fn tag() -> u8 {\n    0xCE\n}\n",
    );

    let report = run_fix(root, false).unwrap();
    assert!(report.fixed.is_empty(), "{:?}", report.fixed);
    assert!(report.rewritten.is_empty());
    assert_eq!(report.refused.len(), 1, "{:?}", report.refused);
    assert!(
        report.refused[0]
            .1
            .contains("no constant in compso_core::wire::magic"),
        "{:?}",
        report.refused
    );
}
