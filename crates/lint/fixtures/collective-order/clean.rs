//# path: crates/comm/src/fake_group_clean.rs
// Fixture: unconditional collectives, non-rank branches, and
// point-to-point traffic inside rank branches are all fine.

impl Group {
    pub fn sync(&mut self) -> Result<(), CommError> {
        self.barrier()?;
        if self.config.compression_enabled {
            self.allreduce_sum(&mut [0.0f32; 4])?;
        }
        Ok(())
    }

    pub fn scatter(&mut self, payload: &[u8]) -> Result<(), CommError> {
        if self.my_rank == 0 {
            self.send(1, payload)?;
        } else {
            let frame = self.recv_from(0)?;
            self.stash(frame);
        }
        Ok(())
    }
}
