//# path: crates/comm/src/fake_group_suppressed.rs
// Fixture: a deliberate guarded barrier with the audit inline.

impl Group {
    pub fn quiesce_departed(&mut self) -> Result<(), CommError> {
        if self.fault_plane_enabled && !self.is_departed(self.phys_rank) {
            // lint:allow(collective-order): every live rank passes this guard identically; departed ranks are fenced out of the group
            self.barrier()?;
        }
        Ok(())
    }
}
