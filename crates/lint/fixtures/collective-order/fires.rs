//# path: crates/comm/src/fake_group.rs
// Fixture: collectives under rank-conditional branches deadlock —
// direct, transitive through a helper, and the early-return shape.

impl Group {
    pub fn quiesce(&mut self) -> Result<(), CommError> {
        if self.my_rank == 0 {
            self.barrier()?; //~ collective-order
        }
        Ok(())
    }

    fn helper_sync(&mut self) -> Result<(), CommError> {
        self.allreduce_sum(&mut [0.0f32; 4])
    }

    pub fn gated(&mut self) -> Result<(), CommError> {
        if self.my_rank == 0 {
            self.helper_sync()?; //~ collective-order
        }
        Ok(())
    }

    pub fn skip_out(&mut self) -> Result<(), CommError> {
        if self.my_rank != 0 {
            return Ok(()); //~ collective-order
        }
        self.barrier()?;
        Ok(())
    }
}
