//# path: crates/kfac/src/fake.rs
// Fixture: in kfac, only code inside Result-returning (fallible)
// functions is on the comm path.

pub fn fallible_step(x: Option<u32>) -> Result<u32, ()> {
    let v = x.unwrap(); //~ no-unwrap-on-comm-path
    Ok(v)
}

pub fn infallible_helper(x: Option<u32>) -> u32 {
    x.unwrap() // no error channel to convert into: out of scope
}
