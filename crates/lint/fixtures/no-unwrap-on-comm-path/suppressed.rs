//# path: crates/comm/src/fake_suppressed.rs
// Fixture: provably-infallible unwraps carry an allow with the proof.

pub fn single_rank(blocks: Vec<Option<Vec<u8>>>) -> Vec<Vec<u8>> {
    // lint:allow(no-unwrap-on-comm-path): p == 1, the only block was just inserted
    blocks.into_iter().map(|b| b.unwrap()).collect()
}

pub fn trailing(slot: Option<u32>) -> u32 {
    slot.unwrap() // lint:allow(no-unwrap-on-comm-path): slot is set by the caller on the same line
}
