//# path: crates/comm/src/fake_clean.rs
// Fixture: poison-recovery combinators, non-comm paths, and test code
// never fire.

use std::sync::Mutex;

pub fn poison_safe(m: &Mutex<Vec<u32>>) -> usize {
    // The sanctioned poisoned-mutex shape: recover the guard.
    m.lock().unwrap_or_else(|p| p.into_inner()).len()
}

pub fn combinators(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    fn in_tests(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
