//# path: crates/comm/src/fake.rs
// Fixture: unwrap/expect anywhere in comm production code fires.

pub fn recv_one(slot: Option<u32>) -> u32 {
    slot.unwrap() //~ no-unwrap-on-comm-path
}

pub fn recv_two(slot: Option<u32>) -> u32 {
    slot.expect("slot populated") //~ no-unwrap-on-comm-path
}
