//# path: crates/ckpt/src/fake_snapshot_suppressed.rs
// Fixture: iterate-then-sort with an allow carrying the justification.

use std::collections::HashMap;

pub struct State {
    factors: HashMap<usize, Vec<u8>>,
}

impl State {
    pub fn export(&self) -> Vec<(usize, Vec<u8>)> {
        let mut entries: Vec<(usize, Vec<u8>)> = self
            // lint:allow(nondeterministic-wire-iteration): collected then sorted by key below
            .factors
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }
}
