//# path: crates/ckpt/src/fake_snapshot_clean.rs
// Fixture: BTreeMap in wire paths, HashMap outside them, and test code
// never fire.

use std::collections::{BTreeMap, HashMap};

pub struct State {
    factors: BTreeMap<usize, Vec<u8>>,
    cache: HashMap<usize, Vec<u8>>,
}

impl State {
    pub fn encode(&self, out: &mut Vec<u8>) {
        // BTreeMap iteration is deterministic: the sanctioned shape.
        for (idx, bytes) in self.factors.iter() {
            out.push(*idx as u8);
            out.extend_from_slice(bytes);
        }
    }

    pub fn lookup_stats(&self) -> usize {
        // Not a wire-producing function: ordering cannot leak into bytes.
        self.cache.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_in_test(s: &State) -> usize {
        s.cache.iter().count()
    }
}
