//# path: crates/ckpt/src/fake_snapshot.rs
// Fixture: HashMap iteration inside wire-producing functions fires.

use std::collections::HashMap;

pub struct State {
    factors: HashMap<usize, Vec<u8>>,
}

impl State {
    pub fn encode(&self, out: &mut Vec<u8>) {
        for (idx, bytes) in self.factors.iter() { //~ nondeterministic-wire-iteration //~ deterministic-state
            out.push(*idx as u8);
            out.extend_from_slice(bytes);
        }
    }

    pub fn snapshot_keys(&self) -> Vec<usize> {
        let mut local = HashMap::new();
        local.insert(1usize, 2usize);
        let mut keys = Vec::new();
        for k in &local { //~ nondeterministic-wire-iteration //~ deterministic-state
            keys.push(*k.0);
        }
        keys
    }
}
