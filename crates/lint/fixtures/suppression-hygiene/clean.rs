//# path: crates/comm/src/fake_hygiene_clean.rs
// Fixture: a well-formed allow (known rule, non-empty reason) is clean.

pub fn annotated(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap-on-comm-path): x is Some by construction in the only caller
    x.unwrap()
}
