//# path: crates/comm/src/fake_hygiene.rs
// Fixture: suppressions are part of the invariant surface — a missing
// reason or an unknown rule name is itself a finding.

pub fn missing_reason(x: Option<u32>) -> u32 {
    // lint:allow(no-unwrap-on-comm-path) //~ suppression-hygiene
    x.unwrap()
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // lint:allow(no-such-rule): reason text //~ suppression-hygiene
    x.unwrap_or(0)
}
