//# path: crates/obs/src/fake_metrics_clean.rs
// Fixture: registered names, registry constants, non-obs namespaces,
// and format placeholders never fire.

pub fn record(rec: &Recorder) {
    rec.incr("comm/recv"); // registered in the fixture context
    rec.incr("ctrl/decisions"); // registered in the fixture context
    rec.span(names::COMM_BARRIER); // constant, no literal at all
}

pub fn tensor_key(idx: usize) -> String {
    // ckpt tensor names use format placeholders and non-obs namespaces.
    let _global = "global/step";
    format!("kfac/{idx}")
}

pub fn prose() -> &'static str {
    "counters live under comm/ and kfac/ namespaces"
}
