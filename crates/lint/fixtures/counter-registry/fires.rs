//# path: crates/obs/src/fake_metrics.rs
// Fixture: unregistered counter names fire — whether counter-shaped
// anywhere, or any literal fed to a name-keyed obs API.

pub fn record(rec: &Recorder) {
    rec.incr("comm/bogus_counter"); //~ counter-registry
    rec.incr("ctrl/bogus_decision"); //~ counter-registry
    rec.span("oops not a name"); //~ counter-registry
}

#[cfg(test)]
mod tests {
    fn pinned_by_literal(rec: &Recorder) {
        // Counter-shaped literals are checked in tests too: this is
        // exactly the drift the registry exists to stop.
        assert_eq!(rec.counter("kfac/bogus_phase"), 0); //~ counter-registry
    }
}
