//# path: crates/obs/src/fake_metrics_suppressed.rs
// Fixture: a justified allow silences the rule.

pub fn record(rec: &Recorder) {
    // lint:allow(counter-registry): exercising the recorder with a throwaway name
    rec.incr("comm/throwaway_name");
}
