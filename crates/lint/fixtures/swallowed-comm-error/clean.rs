//# path: crates/comm/src/fake_shutdown_clean.rs
// Fixture: propagated, bound, and non-comm discards never fire.

impl Group {
    pub fn shutdown(&mut self) -> Result<(), CommError> {
        let _ = self.barrier()?; // Ok value discarded, error propagated
        Ok(())
    }

    pub fn tracked(&mut self) -> Result<(), CommError> {
        let outcome = self.barrier();
        outcome
    }

    pub fn unrelated(&mut self) {
        let _ = self.metrics.flush();
    }
}
