//# path: crates/comm/src/fake_shutdown_suppressed.rs
// Fixture: a genuinely best-effort send with the audit inline.

impl Group {
    pub fn advertise(&mut self, dst: usize) {
        // lint:allow(swallowed-comm-error): best-effort ACK; the ARQ timer retries and this caller has no recovery path
        let _ = self.send(dst, b"ack");
    }
}
