//# path: crates/comm/src/fake_shutdown.rs
// Fixture: discarding a comm Result hides peer failure — direct
// collective and transitively-collective helper.

impl Group {
    pub fn shutdown(&mut self) -> Result<(), CommError> {
        let _ = self.barrier(); //~ swallowed-comm-error
        Ok(())
    }

    fn drain(&mut self) -> Result<(), CommError> {
        self.allgather(&mut [])
    }

    pub fn finish(&mut self) {
        let _ = self.drain(); //~ swallowed-comm-error
    }
}
