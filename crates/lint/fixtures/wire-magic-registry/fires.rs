//# path: crates/core/src/fake_codec.rs
// Fixture: bare wire magics in production encode/decode paths fire.

pub fn encode(out: &mut Vec<u8>) {
    out.push(0xC9); //~ wire-magic-registry
}

pub fn encode_lowrank(out: &mut Vec<u8>) {
    out.push(0xCA); //~ wire-magic-registry
}

pub fn decode(bytes: &[u8]) -> bool {
    let magic: u8 = 0xC5u8; //~ wire-magic-registry
    bytes.first() == Some(&magic)
}

#[cfg(test)]
mod tests {
    // Test code forges bad magics on purpose; never fires.
    fn forge() -> u8 {
        0xC9
    }
}
