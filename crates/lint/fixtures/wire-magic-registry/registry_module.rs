//# path: crates/core/src/wire.rs
// Fixture: the `mod magic` registry block is the one sanctioned home
// for bare magic literals — nothing here fires.

pub mod magic {
    pub const MAGIC_STREAM_V1: u8 = 0xC5;
    pub const MAGIC_FRAME: u8 = 0xCF;
}

pub fn frame(out: &mut Vec<u8>) {
    out.push(magic::MAGIC_FRAME);
}
