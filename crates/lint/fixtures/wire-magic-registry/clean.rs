//# path: crates/core/src/fake_clean.rs
// Fixture: named constants, out-of-range bytes, wide CRC constants, and
// strings/comments never fire.

pub const CRC_POLY: u32 = 0xCBF4_3926; // wide literal: not a magic
pub const NOT_RESERVED: u8 = 0xBF; // outside 0xC0..=0xCF

pub fn encode(out: &mut Vec<u8>, magic: u8) {
    // doc text mentioning 0xC5 never fires
    out.push(magic);
    out.push(compso_core::wire::magic::MAGIC_FRAME);
}

pub fn describe() -> &'static str {
    "frame magic is 0xC5 on the wire"
}
