//# path: crates/core/src/fake_suppressed.rs
// Fixture: an explicit lint:allow with a reason silences the rule.

pub fn golden_vector() -> Vec<u8> {
    // lint:allow(wire-magic-registry): frozen golden test vector bytes, not an encode path
    vec![0xC5, 0x01, 0x00]
}
