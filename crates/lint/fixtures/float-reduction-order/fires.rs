//# path: crates/tensor/src/fake_kernels.rs
// Fixture: unordered parallel float reductions fire — chunking leaks
// into the bits under the real rayon contract.

pub fn norm2(xs: &[f32]) -> f32 {
    xs.par_iter().map(|x| x * x).sum::<f32>() //~ float-reduction-order
}

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b) //~ float-reduction-order
}
