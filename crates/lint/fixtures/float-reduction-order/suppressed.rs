//# path: crates/kfac/src/fake_stats_suppressed.rs
// Fixture: a tolerance-checked parallel float sum with the audit.

pub fn approx_energy(xs: &[f32]) -> f32 {
    // lint:allow(float-reduction-order): diagnostics-only estimate compared at 1e-3 tolerance; never enters optimizer state
    xs.par_iter().map(|x| x * x).sum::<f32>()
}
