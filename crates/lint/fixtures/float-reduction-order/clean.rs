//# path: crates/tensor/src/fake_kernels_clean.rs
// Fixture: integer parallel reductions (associative) and sequential
// float folds never fire.

pub fn count(xs: &[u32]) -> u32 {
    xs.par_iter().copied().sum()
}

pub fn seq_norm2(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>()
}
