//# path: crates/ctrl/src/fake_controller_suppressed.rs
// Fixture: an audited clock read inside a critical cone.

impl Controller {
    pub fn observe(&mut self, s: &Signals) -> Decision {
        self.stamp_wall_clock_for_logs();
        pick(s)
    }

    fn stamp_wall_clock_for_logs(&mut self) {
        // lint:allow(deterministic-state): log timestamp only; it is written to the trace file and never feeds Decision state
        self.last_seen = Instant::now();
    }
}
