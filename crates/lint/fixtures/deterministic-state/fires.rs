//# path: crates/ctrl/src/fake_controller.rs
// Fixture: impurity reachable from a determinism-critical root fires at
// the impurity site (three calls below `observe`), not at the root.

impl Controller {
    pub fn observe(&mut self, s: &Signals) -> Decision {
        let jitter = sample_jitter();
        self.decide_with(s, jitter)
    }
}

fn sample_jitter() -> u64 {
    Instant::now().elapsed().as_nanos() as u64 //~ deterministic-state
}
