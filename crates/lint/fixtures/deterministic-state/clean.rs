//# path: crates/ctrl/src/fake_controller_clean.rs
// Fixture: a pure root, and impurity outside every critical cone.

impl Controller {
    pub fn observe(&mut self, s: &Signals) -> Decision {
        pick(s.err_norm, self.threshold)
    }
}

pub fn profile_once() -> u64 {
    // Not reachable from observe/decide: bench-style timing is fine.
    Instant::now().elapsed().as_nanos() as u64
}
