//# path: crates/core/src/fake_decoder_suppressed.rs
// Fixture: a justified allow silences the rule.

pub fn preallocated_upstream(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let n = r.u32()? as usize;
    // lint:allow(unchecked-length-prefix): caller already validated n against the frame header
    Ok(Vec::with_capacity(n))
}
