//# path: crates/core/src/fake_decoder_clean.rs
// Fixture: the sanctioned validation shapes all clear the taint.

pub fn clamped_in_place(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    // Same-statement clamp: checked_count bounds before binding.
    let n = checked_count(r.u32()? as u64)?;
    Ok(Vec::with_capacity(n))
}

pub fn guarded_before_use(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(Vec::with_capacity(n))
}

pub fn equality_pinned(r: &mut Reader, expected: usize) -> Result<Vec<u8>, WireError> {
    let n = r.u64()? as usize;
    if n != expected {
        return Err(WireError::Invalid("length mismatch"));
    }
    Ok(vec![0u8; n])
}

pub fn trusted_size(layers: &[Vec<f32>]) -> Vec<f32> {
    // No wire read involved: never tainted.
    let n = layers.len();
    Vec::with_capacity(n)
}

fn raw_len(r: &mut Reader) -> Result<usize, WireError> {
    // Length source (unclamped); its callers below validate.
    Ok(r.u32()? as usize)
}

fn clamped_len(r: &mut Reader) -> Result<usize, WireError> {
    // Clamped at the source: NOT a length source, callers are free.
    checked_count(r.u32()? as u64)
}

pub fn guarded_caller(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    // The membership.rs rank_count shape: raw helper, caller guards.
    let n = raw_len(r)?;
    if n > RANKS_MAX {
        return Err(WireError::Invalid("rank list too long"));
    }
    Ok(Vec::with_capacity(n))
}

pub fn caller_of_clamped(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let n = clamped_len(r)?;
    Ok(Vec::with_capacity(n))
}
