//# path: crates/core/src/fake_decoder.rs
// Fixture: wire-read lengths sizing allocations without a bound check.

pub fn decode_vec(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n); //~ unchecked-length-prefix
    out.push(0);
    Ok(out)
}

pub fn decode_buf(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let len = r.u64()? as usize;
    let buf = vec![0u8; len]; //~ unchecked-length-prefix
    Ok(buf)
}

pub fn decode_take(r: &mut Reader) -> Result<(), WireError> {
    let count = r.u32()? as usize;
    let _head = r.take(count); //~ unchecked-length-prefix
    Ok(())
}

fn raw_len(r: &mut Reader) -> Result<usize, WireError> {
    // Length source: returns a wire-read length unclamped. The rule
    // never fires here — the obligation transfers to the callers.
    Ok(r.u32()? as usize)
}

pub fn decode_via_helper(r: &mut Reader) -> Result<Vec<u8>, WireError> {
    let n = raw_len(r)?;
    let out = Vec::with_capacity(n); //~ unchecked-length-prefix
    Ok(out)
}
