//! Incremental analysis cache keyed on file identity.
//!
//! A full workspace run lexes every first-party file even though CI and
//! local loops touch a handful between runs. The cache records, per
//! file, the `(mtime_ns, size)` observed at check time and the
//! diagnostics produced, under a context fingerprint covering
//! everything else a verdict depends on: the obs name registry, the
//! rule catalogue, and the analyzer's own sources. A hit replays the
//! stored diagnostics without reading the file body; any mismatch —
//! stale mtime, changed size, unknown rule name, malformed cache line,
//! fingerprint drift — falls back to a fresh check of that file (or the
//! whole run). Correctness never depends on the cache: the worst a
//! corrupt cache can do is cause re-checking.
//!
//! Format (line-oriented text, one file per `F` record, its findings as
//! following `D` records):
//!
//! ```text
//! compso-lint-cache v1 <context-fingerprint-hex>
//! F <mtime_ns> <size> <workspace-relative path>
//! D <rule> <line> <col> <escaped message>
//! ```

use crate::engine::{check_file, sort_diags, Context, Diagnostic, SUPPRESSION_HYGIENE};
use crate::rules::RULE_NAMES;
use crate::source::SourceFile;
use crate::{rules_apply_to, walker};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

const HEADER: &str = "compso-lint-cache v1";

/// Hit accounting for the summary line (and the equality tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files subject to rules this run.
    pub files: usize,
    /// Files whose diagnostics were replayed from the cache.
    pub hits: usize,
}

struct CachedFile {
    mtime_ns: u128,
    size: u64,
    diags: Vec<Diagnostic>,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Fingerprint of everything a cached verdict depends on besides the
/// checked file itself. An edit to the obs registry, the rule list, or
/// any analyzer source invalidates the whole cache — conservatively:
/// over-invalidation costs one cold run, under-invalidation would serve
/// stale verdicts.
fn context_fingerprint(root: &Path) -> io::Result<u64> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, HEADER.as_bytes());
    for name in RULE_NAMES {
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, b"\x1f");
    }
    fnv1a(
        &mut h,
        &std::fs::read(root.join("crates/obs/src/names.rs"))?,
    );
    let mut lint_src = Vec::new();
    collect_rs(&root.join("crates/lint/src"), &mut lint_src);
    lint_src.sort();
    for path in &lint_src {
        fnv1a(&mut h, walker::rel_path(root, path).as_bytes());
        fnv1a(&mut h, b"\x1f");
        // The analyzer may run from a tree where its own sources are
        // absent (e.g. a packaged binary); that just pins the
        // fingerprint to "no sources" rather than failing the run.
        if let Ok(bytes) = std::fs::read(path) {
            fnv1a(&mut h, &bytes);
        }
    }
    Ok(h)
}

fn escape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(msg: &str) -> Option<String> {
    let mut out = String::with_capacity(msg.len());
    let mut it = msg.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Diagnostics carry `&'static str` rule names; a cached name is only
/// valid if it still denotes a live rule.
fn static_rule_name(name: &str) -> Option<&'static str> {
    if name == SUPPRESSION_HYGIENE {
        return Some(SUPPRESSION_HYGIENE);
    }
    RULE_NAMES.iter().find(|&&r| r == name).copied()
}

/// Parse a cache file. Any anomaly — wrong header, wrong fingerprint,
/// malformed record, unknown rule — discards the whole cache: the next
/// run simply re-checks everything.
fn load(cache_path: &Path, fingerprint: u64) -> HashMap<String, CachedFile> {
    let Ok(text) = std::fs::read_to_string(cache_path) else {
        return HashMap::new();
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == format!("{HEADER} {fingerprint:016x}") => {}
        _ => return HashMap::new(),
    }
    let mut out: HashMap<String, CachedFile> = HashMap::new();
    let mut current: Option<String> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("F ") {
            let mut it = rest.splitn(3, ' ');
            let parsed = (|| {
                let mtime_ns: u128 = it.next()?.parse().ok()?;
                let size: u64 = it.next()?.parse().ok()?;
                let path = it.next()?.to_string();
                Some((mtime_ns, size, path))
            })();
            let Some((mtime_ns, size, path)) = parsed else {
                return HashMap::new();
            };
            out.insert(
                path.clone(),
                CachedFile {
                    mtime_ns,
                    size,
                    diags: Vec::new(),
                },
            );
            current = Some(path);
        } else if let Some(rest) = line.strip_prefix("D ") {
            let Some(path) = &current else {
                return HashMap::new();
            };
            let mut it = rest.splitn(4, ' ');
            let parsed = (|| {
                let rule = static_rule_name(it.next()?)?;
                let line: usize = it.next()?.parse().ok()?;
                let col: usize = it.next()?.parse().ok()?;
                let message = unescape(it.next().unwrap_or(""))?;
                Some(Diagnostic {
                    rule,
                    path: path.clone(),
                    line,
                    col,
                    message,
                })
            })();
            let Some(d) = parsed else {
                return HashMap::new();
            };
            out.get_mut(path)
                .expect("current implies entry")
                .diags
                .push(d);
        } else if !line.is_empty() {
            return HashMap::new();
        }
    }
    out
}

fn write_cache(
    cache_path: &Path,
    fingerprint: u64,
    entries: &[(String, u128, u64, Vec<Diagnostic>)],
) -> io::Result<()> {
    let mut text = format!("{HEADER} {fingerprint:016x}\n");
    for (path, mtime_ns, size, diags) in entries {
        let _ = writeln!(text, "F {mtime_ns} {size} {path}");
        for d in diags {
            let _ = writeln!(
                text,
                "D {} {} {} {}",
                d.rule,
                d.line,
                d.col,
                escape(&d.message)
            );
        }
    }
    if let Some(parent) = cache_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(cache_path, text)
}

fn file_identity(path: &Path) -> Option<(u128, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?.duration_since(UNIX_EPOCH).ok()?;
    Some((mtime.as_nanos(), meta.len()))
}

/// [`crate::check_workspace`] with an incremental cache at `cache_path`.
///
/// Produces diagnostics identical to the cold path for any cache state
/// (pinned by `cached_runs_match_cold_run_exactly`); the cache file is
/// rewritten after every run. A cache write failure is swallowed — the
/// cache is an optimization, never a correctness dependency.
pub fn check_workspace_cached(
    root: &Path,
    cache_path: &Path,
) -> io::Result<(Vec<Diagnostic>, CacheStats)> {
    let ctx = Context::from_workspace(root)?;
    let fingerprint = context_fingerprint(root)?;
    let cache = load(cache_path, fingerprint);
    let mut out = Vec::new();
    let mut entries: Vec<(String, u128, u64, Vec<Diagnostic>)> = Vec::new();
    let mut stats = CacheStats { files: 0, hits: 0 };
    for path in walker::collect_files(root, false) {
        let rel = walker::rel_path(root, &path);
        if !rules_apply_to(&rel) {
            continue;
        }
        stats.files += 1;
        let identity = file_identity(&path);
        if let (Some((mtime_ns, size)), Some(c)) = (identity, cache.get(&rel)) {
            if c.mtime_ns == mtime_ns && c.size == size {
                stats.hits += 1;
                out.extend(c.diags.iter().cloned());
                entries.push((rel, mtime_ns, size, c.diags.clone()));
                continue;
            }
        }
        let src = std::fs::read_to_string(&path)?;
        let file = SourceFile::new(rel.clone(), src);
        let mut diags = Vec::new();
        check_file(&file, &ctx, &mut diags);
        out.extend(diags.iter().cloned());
        if let Some((mtime_ns, size)) = identity {
            entries.push((rel, mtime_ns, size, diags));
        }
    }
    sort_diags(&mut out);
    let _ = write_cache(cache_path, fingerprint, &entries);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_workspace;

    /// Scratch directory cleaned up on drop (no tempfile dependency in
    /// the offline build).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir()
                .join(format!("compso-lint-cache-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Builds a miniature workspace: an obs registry (required by
    /// `Context::from_workspace`) plus two first-party files, one with a
    /// deterministic suppression-hygiene finding.
    fn mini_workspace(root: &Path) {
        let obs = root.join("crates/obs/src");
        std::fs::create_dir_all(&obs).unwrap();
        std::fs::write(
            obs.join("names.rs"),
            "pub const STEP: &str = \"kfac/step\";\n",
        )
        .unwrap();
        let foo = root.join("crates/foo/src");
        std::fs::create_dir_all(&foo).unwrap();
        std::fs::write(foo.join("lib.rs"), "pub fn ok() {}\n").unwrap();
        std::fs::write(
            foo.join("dirty.rs"),
            "// lint:allow(no-such-rule): pinned finding\npub fn f() {}\n",
        )
        .unwrap();
    }

    #[test]
    fn cached_runs_match_cold_run_exactly() {
        let scratch = Scratch::new("equality");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");

        let cold = check_workspace(root).unwrap();
        assert!(
            cold.iter().any(|d| d.message.contains("no-such-rule")),
            "mini workspace must produce at least one finding: {cold:?}"
        );

        let (first, s1) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(first, cold, "cold cache run must equal uncached run");
        assert_eq!(s1.hits, 0);
        assert!(s1.files >= 2);

        let (second, s2) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(second, cold, "warm cache run must equal uncached run");
        assert_eq!(
            s2,
            CacheStats {
                files: s1.files,
                hits: s1.files
            }
        );
    }

    #[test]
    fn edited_file_is_rechecked_and_others_replay() {
        let scratch = Scratch::new("invalidate");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        // Different length, so invalidation cannot depend on mtime
        // granularity.
        let dirty = root.join("crates/foo/src/dirty.rs");
        std::fs::write(
            &dirty,
            "// lint:allow(still-not-a-rule): edited, new length\npub fn f() {}\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(stats.hits, stats.files - 1, "only the edit misses");
        assert!(diags.iter().any(|d| d.message.contains("still-not-a-rule")));
        assert!(!diags.iter().any(|d| d.message.contains("`no-such-rule`")));
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn registry_edit_invalidates_whole_cache() {
        let scratch = Scratch::new("context");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        std::fs::write(
            root.join("crates/obs/src/names.rs"),
            "pub const STEP: &str = \"kfac/step\";\npub const NEW: &str = \"kfac/new\";\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(
            stats.hits, 0,
            "registry edit must drop every cached verdict"
        );
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn corrupt_cache_degrades_to_cold_run() {
        let scratch = Scratch::new("corrupt");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        for garbage in [
            "not a cache at all\n".to_string(),
            "compso-lint-cache v1 0000000000000000\nF 1 2 x.rs\n".to_string(),
            std::fs::read_to_string(&cache).unwrap().replace("D ", "Z "),
        ] {
            std::fs::write(&cache, garbage).unwrap();
            let (diags, _) = check_workspace_cached(root, &cache).unwrap();
            assert_eq!(diags, check_workspace(root).unwrap());
        }
    }

    #[test]
    fn message_escaping_roundtrips() {
        for msg in ["plain", "with\nnewline", "back\\slash", "\r\n mixed \\n"] {
            assert_eq!(unescape(&escape(msg)).as_deref(), Some(msg));
        }
        assert_eq!(unescape("bad \\q escape"), None);
    }
}
