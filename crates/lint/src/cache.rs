//! Incremental analysis cache keyed on file identity.
//!
//! A full workspace run lexes every first-party file even though CI and
//! local loops touch a handful between runs. The cache records, per
//! file, the `(mtime_ns, size)` observed at check time and the
//! diagnostics produced, under a context fingerprint covering
//! everything else a verdict depends on: the obs name registry, the
//! rule catalogue, and the analyzer's own sources. A hit replays the
//! stored diagnostics without reading the file body; any mismatch —
//! stale mtime, changed size, unknown rule name, malformed cache line,
//! fingerprint drift — falls back to a fresh check of that file (or the
//! whole run). Correctness never depends on the cache: the worst a
//! corrupt cache can do is cause re-checking.
//!
//! A per-file verdict also depends on one piece of *cross-file* state:
//! the workspace-wide set of length-source functions feeding
//! `unchecked-length-prefix` cross-function taint. The cache stores the
//! merged set it checked under (`L` records) and each file's own
//! contribution (`S` records under its `F`). On a warm run the merged
//! set is rebuilt from cached contributions (hits) plus fresh
//! collection (misses); if it differs from the stored set — someone
//! added a clamp to a helper, or introduced a new raw-length helper —
//! every cached diagnostic is stale and the whole run goes cold.
//! Rechecking rewrites the cache, so the staleness lasts one run.
//!
//! Format (line-oriented text; `L` records first, then one file per
//! `F` record with its contributed sources as `S` records and findings
//! as `D` records):
//!
//! ```text
//! compso-lint-cache v2 <context-fingerprint-hex>
//! L <length-source fn name>
//! F <mtime_ns> <size> <workspace-relative path>
//! S <length-source fn name>
//! D <rule> <line> <col> <escaped message>
//! ```

use crate::engine::{check_file, sort_diags, Context, Diagnostic, SUPPRESSION_HYGIENE};
use crate::rules::length_prefix::collect_length_sources;
use crate::rules::RULE_NAMES;
use crate::source::SourceFile;
use crate::{rules_apply_to, walker};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

const HEADER: &str = "compso-lint-cache v2";

/// Hit accounting for the summary line (and the equality tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files subject to rules this run.
    pub files: usize,
    /// Files whose diagnostics were replayed from the cache.
    pub hits: usize,
}

struct CachedFile {
    mtime_ns: u128,
    size: u64,
    sources: Vec<String>,
    diags: Vec<Diagnostic>,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Fingerprint of everything a cached verdict depends on besides the
/// checked file itself. An edit to the obs registry, the rule list, or
/// any analyzer source invalidates the whole cache — conservatively:
/// over-invalidation costs one cold run, under-invalidation would serve
/// stale verdicts.
fn context_fingerprint(root: &Path) -> io::Result<u64> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, HEADER.as_bytes());
    for name in RULE_NAMES {
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, b"\x1f");
    }
    fnv1a(
        &mut h,
        &std::fs::read(root.join("crates/obs/src/names.rs"))?,
    );
    let mut lint_src = Vec::new();
    collect_rs(&root.join("crates/lint/src"), &mut lint_src);
    lint_src.sort();
    for path in &lint_src {
        fnv1a(&mut h, walker::rel_path(root, path).as_bytes());
        fnv1a(&mut h, b"\x1f");
        // The analyzer may run from a tree where its own sources are
        // absent (e.g. a packaged binary); that just pins the
        // fingerprint to "no sources" rather than failing the run.
        if let Ok(bytes) = std::fs::read(path) {
            fnv1a(&mut h, &bytes);
        }
    }
    Ok(h)
}

fn escape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(msg: &str) -> Option<String> {
    let mut out = String::with_capacity(msg.len());
    let mut it = msg.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Diagnostics carry `&'static str` rule names; a cached name is only
/// valid if it still denotes a live rule.
fn static_rule_name(name: &str) -> Option<&'static str> {
    if name == SUPPRESSION_HYGIENE {
        return Some(SUPPRESSION_HYGIENE);
    }
    RULE_NAMES.iter().find(|&&r| r == name).copied()
}

/// Parse a cache file. Any anomaly — wrong header, wrong fingerprint,
/// malformed record, unknown rule — discards the whole cache: the next
/// run simply re-checks everything. Returns the per-file records plus
/// the merged length-source set the cached verdicts were computed under.
fn load(cache_path: &Path, fingerprint: u64) -> (HashMap<String, CachedFile>, BTreeSet<String>) {
    let empty = || (HashMap::new(), BTreeSet::new());
    let Ok(text) = std::fs::read_to_string(cache_path) else {
        return empty();
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == format!("{HEADER} {fingerprint:016x}") => {}
        _ => return empty(),
    }
    let mut out: HashMap<String, CachedFile> = HashMap::new();
    let mut merged = BTreeSet::new();
    let mut current: Option<String> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("L ") {
            if current.is_some() || rest.is_empty() {
                return empty(); // L records belong to the header section
            }
            merged.insert(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("S ") {
            let Some(path) = &current else {
                return empty();
            };
            if rest.is_empty() {
                return empty();
            }
            out.get_mut(path)
                .expect("current implies entry")
                .sources
                .push(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("F ") {
            let mut it = rest.splitn(3, ' ');
            let parsed = (|| {
                let mtime_ns: u128 = it.next()?.parse().ok()?;
                let size: u64 = it.next()?.parse().ok()?;
                let path = it.next()?.to_string();
                Some((mtime_ns, size, path))
            })();
            let Some((mtime_ns, size, path)) = parsed else {
                return empty();
            };
            out.insert(
                path.clone(),
                CachedFile {
                    mtime_ns,
                    size,
                    sources: Vec::new(),
                    diags: Vec::new(),
                },
            );
            current = Some(path);
        } else if let Some(rest) = line.strip_prefix("D ") {
            let Some(path) = &current else {
                return empty();
            };
            let mut it = rest.splitn(4, ' ');
            let parsed = (|| {
                let rule = static_rule_name(it.next()?)?;
                let line: usize = it.next()?.parse().ok()?;
                let col: usize = it.next()?.parse().ok()?;
                let message = unescape(it.next().unwrap_or(""))?;
                Some(Diagnostic {
                    rule,
                    path: path.clone(),
                    line,
                    col,
                    message,
                })
            })();
            let Some(d) = parsed else {
                return empty();
            };
            out.get_mut(path)
                .expect("current implies entry")
                .diags
                .push(d);
        } else if !line.is_empty() {
            return empty();
        }
    }
    (out, merged)
}

/// One file's worth of state to persist: identity, the length sources
/// it contributes, and its diagnostics.
struct CacheEntry {
    path: String,
    mtime_ns: u128,
    size: u64,
    sources: Vec<String>,
    diags: Vec<Diagnostic>,
}

fn write_cache(
    cache_path: &Path,
    fingerprint: u64,
    merged_sources: &BTreeSet<String>,
    entries: &[CacheEntry],
) -> io::Result<()> {
    let mut text = format!("{HEADER} {fingerprint:016x}\n");
    for s in merged_sources {
        let _ = writeln!(text, "L {s}");
    }
    for e in entries {
        let _ = writeln!(text, "F {} {} {}", e.mtime_ns, e.size, e.path);
        for s in &e.sources {
            let _ = writeln!(text, "S {s}");
        }
        for d in &e.diags {
            let _ = writeln!(
                text,
                "D {} {} {} {}",
                d.rule,
                d.line,
                d.col,
                escape(&d.message)
            );
        }
    }
    if let Some(parent) = cache_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(cache_path, text)
}

fn file_identity(path: &Path) -> Option<(u128, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?.duration_since(UNIX_EPOCH).ok()?;
    Some((mtime.as_nanos(), meta.len()))
}

/// [`crate::check_workspace`] with an incremental cache at `cache_path`.
///
/// Produces diagnostics identical to the cold path for any cache state
/// (pinned by `cached_runs_match_cold_run_exactly`); the cache file is
/// rewritten after every run. A cache write failure is swallowed — the
/// cache is an optimization, never a correctness dependency.
pub fn check_workspace_cached(
    root: &Path,
    cache_path: &Path,
) -> io::Result<(Vec<Diagnostic>, CacheStats)> {
    let base = Context::from_workspace(root)?;
    let fingerprint = context_fingerprint(root)?;
    let (cache, cached_sources) = load(cache_path, fingerprint);

    // Pass 1: establish each file's identity and its length-source
    // contribution — from the cache on an identity hit, from a fresh
    // parse on a miss (the parse is kept for pass 2).
    struct Seen {
        rel: String,
        identity: Option<(u128, u64)>,
        hit: bool,
        parsed: Option<SourceFile>,
        sources: Vec<String>,
    }
    let mut seen: Vec<Seen> = Vec::new();
    for path in walker::collect_files(root, false) {
        let rel = walker::rel_path(root, &path);
        if !rules_apply_to(&rel) {
            continue;
        }
        let identity = file_identity(&path);
        let hit = matches!(
            (identity, cache.get(&rel)),
            (Some((m, s)), Some(c)) if c.mtime_ns == m && c.size == s
        );
        let (parsed, sources) = if hit {
            (None, cache[&rel].sources.clone())
        } else {
            let src = std::fs::read_to_string(&path)?;
            let file = SourceFile::new(rel.clone(), src);
            let sources = collect_length_sources(&file);
            (Some(file), sources)
        };
        seen.push(Seen {
            rel,
            identity,
            hit,
            parsed,
            sources,
        });
    }

    // Cached diagnostics were computed under `cached_sources`; they are
    // only replayable if the merged set is unchanged. A drift (helper
    // clamped, helper added) makes every verdict stale — the run goes
    // cold and the rewrite below repairs the cache in one pass.
    let merged: BTreeSet<String> = seen
        .iter()
        .flat_map(|s| s.sources.iter().cloned())
        .collect();
    let replayable = merged == cached_sources;
    let ctx = Context {
        registered_names: base.registered_names,
        length_sources: merged.clone(),
    };

    let mut out = Vec::new();
    let mut entries: Vec<CacheEntry> = Vec::new();
    let mut stats = CacheStats { files: 0, hits: 0 };
    for s in seen {
        stats.files += 1;
        if s.hit && replayable {
            let c = &cache[&s.rel];
            stats.hits += 1;
            out.extend(c.diags.iter().cloned());
            let (mtime_ns, size) = s.identity.expect("hit implies identity");
            entries.push(CacheEntry {
                path: s.rel,
                mtime_ns,
                size,
                sources: s.sources,
                diags: c.diags.clone(),
            });
            continue;
        }
        let file = match s.parsed {
            Some(f) => f,
            None => {
                let src = std::fs::read_to_string(root.join(&s.rel))?;
                SourceFile::new(s.rel.clone(), src)
            }
        };
        let mut diags = Vec::new();
        check_file(&file, &ctx, &mut diags);
        out.extend(diags.iter().cloned());
        if let Some((mtime_ns, size)) = s.identity {
            entries.push(CacheEntry {
                path: s.rel,
                mtime_ns,
                size,
                sources: s.sources,
                diags,
            });
        }
    }
    sort_diags(&mut out);
    let _ = write_cache(cache_path, fingerprint, &merged, &entries);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_workspace;

    /// Scratch directory cleaned up on drop (no tempfile dependency in
    /// the offline build).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir()
                .join(format!("compso-lint-cache-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Builds a miniature workspace: an obs registry (required by
    /// `Context::from_workspace`) plus two first-party files, one with a
    /// deterministic suppression-hygiene finding.
    fn mini_workspace(root: &Path) {
        let obs = root.join("crates/obs/src");
        std::fs::create_dir_all(&obs).unwrap();
        std::fs::write(
            obs.join("names.rs"),
            "pub const STEP: &str = \"kfac/step\";\n",
        )
        .unwrap();
        let foo = root.join("crates/foo/src");
        std::fs::create_dir_all(&foo).unwrap();
        std::fs::write(foo.join("lib.rs"), "pub fn ok() {}\n").unwrap();
        std::fs::write(
            foo.join("dirty.rs"),
            "// lint:allow(no-such-rule): pinned finding\npub fn f() {}\n",
        )
        .unwrap();
    }

    #[test]
    fn cached_runs_match_cold_run_exactly() {
        let scratch = Scratch::new("equality");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");

        let cold = check_workspace(root).unwrap();
        assert!(
            cold.iter().any(|d| d.message.contains("no-such-rule")),
            "mini workspace must produce at least one finding: {cold:?}"
        );

        let (first, s1) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(first, cold, "cold cache run must equal uncached run");
        assert_eq!(s1.hits, 0);
        assert!(s1.files >= 2);

        let (second, s2) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(second, cold, "warm cache run must equal uncached run");
        assert_eq!(
            s2,
            CacheStats {
                files: s1.files,
                hits: s1.files
            }
        );
    }

    #[test]
    fn edited_file_is_rechecked_and_others_replay() {
        let scratch = Scratch::new("invalidate");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        // Different length, so invalidation cannot depend on mtime
        // granularity.
        let dirty = root.join("crates/foo/src/dirty.rs");
        std::fs::write(
            &dirty,
            "// lint:allow(still-not-a-rule): edited, new length\npub fn f() {}\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(stats.hits, stats.files - 1, "only the edit misses");
        assert!(diags.iter().any(|d| d.message.contains("still-not-a-rule")));
        assert!(!diags.iter().any(|d| d.message.contains("`no-such-rule`")));
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn registry_edit_invalidates_whole_cache() {
        let scratch = Scratch::new("context");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        std::fs::write(
            root.join("crates/obs/src/names.rs"),
            "pub const STEP: &str = \"kfac/step\";\npub const NEW: &str = \"kfac/new\";\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(
            stats.hits, 0,
            "registry edit must drop every cached verdict"
        );
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn corrupt_cache_degrades_to_cold_run() {
        let scratch = Scratch::new("corrupt");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        for garbage in [
            "not a cache at all\n".to_string(),
            "compso-lint-cache v1 0000000000000000\nF 1 2 x.rs\n".to_string(),
            "compso-lint-cache v2 0000000000000000\nF 1 2 x.rs\n".to_string(),
            std::fs::read_to_string(&cache).unwrap().replace("D ", "Z "),
            // An `L` record after the first `F` is malformed (v2 shape).
            std::fs::read_to_string(&cache).unwrap() + "L stray_source\n",
        ] {
            std::fs::write(&cache, garbage).unwrap();
            let (diags, _) = check_workspace_cached(root, &cache).unwrap();
            assert_eq!(diags, check_workspace(root).unwrap());
        }
    }

    #[test]
    fn helper_clamp_edit_invalidates_callers_in_other_files() {
        let scratch = Scratch::new("xfn");
        let root = scratch.path();
        mini_workspace(root);
        let helper = root.join("crates/foo/src/helper.rs");
        std::fs::write(
            &helper,
            "pub fn wire_len(r: &mut Reader<'_>) -> usize {\n    r.u32() as usize\n}\n",
        )
        .unwrap();
        let caller = root.join("crates/foo/src/caller.rs");
        std::fs::write(
            &caller,
            "pub fn decode(r: &mut Reader<'_>) -> Vec<u8> {\n    \
                 let n = wire_len(r);\n    \
                 let out = Vec::with_capacity(n);\n    \
                 out\n}\n",
        )
        .unwrap();
        let cache = root.join("lint-cache");

        let (first, _) = check_workspace_cached(root, &cache).unwrap();
        assert!(
            first
                .iter()
                .any(|d| d.rule == "unchecked-length-prefix" && d.path.ends_with("caller.rs")),
            "cross-file taint must reach the caller: {first:?}"
        );

        // Clamp the helper. caller.rs is untouched — a naive
        // (mtime, size) replay would keep its stale finding — but the
        // source-set gate must force a cold recheck that clears it.
        std::fs::write(
            &helper,
            "pub fn wire_len(r: &mut Reader<'_>) -> usize {\n    \
                 checked_count(r.u32() as u64)\n}\n",
        )
        .unwrap();
        let (second, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(stats.hits, 0, "source-set drift must drop every verdict");
        assert!(
            !second.iter().any(|d| d.rule == "unchecked-length-prefix"),
            "clamped helper must clear the caller's finding: {second:?}"
        );
        assert_eq!(second, check_workspace(root).unwrap());

        // The rewrite repaired the cache: next run replays warm.
        let (third, s3) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(third, second);
        assert_eq!(s3.hits, s3.files);
    }

    #[test]
    fn message_escaping_roundtrips() {
        for msg in ["plain", "with\nnewline", "back\\slash", "\r\n mixed \\n"] {
            assert_eq!(unescape(&escape(msg)).as_deref(), Some(msg));
        }
        assert_eq!(unescape("bad \\q escape"), None);
    }
}
