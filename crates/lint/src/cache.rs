//! Incremental analysis cache (v3): file identity plus call-graph
//! dependency fingerprints.
//!
//! A full workspace run lexes every first-party file even though CI and
//! local loops touch a handful between runs. The cache records, per
//! file, the `(mtime_ns, size)` observed at check time, the file's
//! **function summaries** (`G` records — callees, direct impurity,
//! length-source flag: exactly [`crate::callgraph::FnSummary`]), a
//! **dependency fingerprint**, and the diagnostics produced — all under
//! a context fingerprint covering everything global a verdict depends
//! on: the obs name registry, the rule catalogue, and the analyzer's
//! own sources.
//!
//! v2 handled one piece of cross-file state (the length-source set)
//! with a whole-cache staleness gate: any drift re-checked *every*
//! file. v3 rules read much more cross-file state — transitive
//! impurity, collective reachability, root cones — so the gate is now
//! per file and precise:
//!
//! 1. identity pass: files whose `(mtime_ns, size)` match replay their
//!    cached summaries without being read; the rest are parsed and
//!    summarized fresh;
//! 2. one workspace [`crate::callgraph::solve`] over the merged
//!    summaries (cached + fresh) rebuilds the global facts;
//! 3. each file's **depfp** is recomputed: a hash over the *solved*
//!    facts of every function the file defines and every callee name
//!    it references. A file replays its `D` records only when both its
//!    identity AND its depfp match; otherwise it is re-checked under
//!    the fresh context.
//!
//! Editing a helper therefore re-runs exactly the files whose verdicts
//! could have changed: the helper's own file (identity miss) and every
//! file whose summaries reference it or whose functions' solved facts
//! (impurity, collectivity, root cones, length-sourceness) shifted —
//! transitive callers included, because *their* facts shifted too.
//! Untouched, unaffected files replay.
//!
//! Any anomaly — stale mtime, changed size, unknown rule name,
//! malformed record, fingerprint drift — falls back to a fresh check of
//! that file (or the whole run). Correctness never depends on the
//! cache: the worst a corrupt cache can do is cause re-checking.
//!
//! Format (line-oriented text; one file per `F` record, each followed
//! by its `G` summaries and `D` findings):
//!
//! ```text
//! compso-lint-cache v3 <context-fingerprint-hex>
//! F <mtime_ns> <size> <depfp-hex> <workspace-relative path>
//! G <flags-hex> <fn name> [<callee> ...]
//! D <rule> <line> <col> <escaped message>
//! ```
//!
//! `G` flags: bits 0–2 = direct impurity mask, bit 3 = length source.

use crate::callgraph::{summarize, FileSummaries, FnFacts, FnSummary};
use crate::engine::{check_file, sort_diags, with_graph, Context, Diagnostic, SUPPRESSION_HYGIENE};
use crate::rules::RULE_NAMES;
use crate::source::SourceFile;
use crate::{rules_apply_to, walker};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

const HEADER: &str = "compso-lint-cache v3";

/// Hit accounting for the summary line (and the equality tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files subject to rules this run.
    pub files: usize,
    /// Files whose diagnostics were replayed from the cache.
    pub hits: usize,
}

struct CachedFile {
    mtime_ns: u128,
    size: u64,
    depfp: u64,
    fns: Vec<FnSummary>,
    diags: Vec<Diagnostic>,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Fingerprint of everything *global* a cached verdict depends on
/// besides the checked file and the call graph: the obs name registry,
/// the rule list, and the analyzer's own sources. An edit to any of
/// them invalidates the whole cache — conservatively: over-invalidation
/// costs one cold run, under-invalidation would serve stale verdicts.
/// (Cross-file call-graph state is handled per file by the depfp, not
/// here.)
fn context_fingerprint(root: &Path) -> io::Result<u64> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, HEADER.as_bytes());
    for name in RULE_NAMES {
        fnv1a(&mut h, name.as_bytes());
        fnv1a(&mut h, b"\x1f");
    }
    fnv1a(
        &mut h,
        &std::fs::read(root.join("crates/obs/src/names.rs"))?,
    );
    let mut lint_src = Vec::new();
    collect_rs(&root.join("crates/lint/src"), &mut lint_src);
    lint_src.sort();
    for path in &lint_src {
        fnv1a(&mut h, walker::rel_path(root, path).as_bytes());
        fnv1a(&mut h, b"\x1f");
        // The analyzer may run from a tree where its own sources are
        // absent (e.g. a packaged binary); that just pins the
        // fingerprint to "no sources" rather than failing the run.
        if let Ok(bytes) = std::fs::read(path) {
            fnv1a(&mut h, &bytes);
        }
    }
    Ok(h)
}

/// Hash one function's solved facts into `h`. Every field a rule can
/// consult is covered — impurity mask, collectivity, length-sourceness,
/// and the full root set — so any fact shift flips the depfp.
fn hash_facts(h: &mut u64, facts: Option<&FnFacts>) {
    match facts {
        None => fnv1a(h, b"\x00absent"),
        Some(f) => {
            fnv1a(h, &[f.impure, f.collective as u8, f.length_source as u8]);
            for r in &f.roots {
                fnv1a(h, r.as_bytes());
                fnv1a(h, b"\x1f");
            }
        }
    }
    fnv1a(h, b"\x1e");
}

/// The file's dependency fingerprint under the current global solve:
/// for every function the file defines, its own solved facts plus the
/// solved facts of every callee name it references (absent callees hash
/// as "absent", so a later definition of that name is also a drift).
fn dep_fingerprint(s: &FileSummaries, facts: &BTreeMap<String, FnFacts>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fns: Vec<&FnSummary> = s.fns.iter().collect();
    fns.sort_by_key(|f| &f.name);
    for f in fns {
        fnv1a(&mut h, f.name.as_bytes());
        hash_facts(&mut h, facts.get(&f.name));
        for c in &f.callees {
            fnv1a(&mut h, c.as_bytes());
            hash_facts(&mut h, facts.get(c));
        }
    }
    h
}

fn escape(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    for c in msg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(msg: &str) -> Option<String> {
    let mut out = String::with_capacity(msg.len());
    let mut it = msg.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Diagnostics carry `&'static str` rule names; a cached name is only
/// valid if it still denotes a live rule.
fn static_rule_name(name: &str) -> Option<&'static str> {
    if name == SUPPRESSION_HYGIENE {
        return Some(SUPPRESSION_HYGIENE);
    }
    RULE_NAMES.iter().find(|&&r| r == name).copied()
}

/// Parse a cache file. Any anomaly — wrong header, wrong fingerprint,
/// malformed record, unknown rule — discards the whole cache: the next
/// run simply re-checks everything.
fn load(cache_path: &Path, fingerprint: u64) -> HashMap<String, CachedFile> {
    let Ok(text) = std::fs::read_to_string(cache_path) else {
        return HashMap::new();
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == format!("{HEADER} {fingerprint:016x}") => {}
        _ => return HashMap::new(),
    }
    let mut out: HashMap<String, CachedFile> = HashMap::new();
    let mut current: Option<String> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("F ") {
            let mut it = rest.splitn(4, ' ');
            let parsed = (|| {
                let mtime_ns: u128 = it.next()?.parse().ok()?;
                let size: u64 = it.next()?.parse().ok()?;
                let depfp = u64::from_str_radix(it.next()?, 16).ok()?;
                let path = it.next()?.to_string();
                Some((mtime_ns, size, depfp, path))
            })();
            let Some((mtime_ns, size, depfp, path)) = parsed else {
                return HashMap::new();
            };
            out.insert(
                path.clone(),
                CachedFile {
                    mtime_ns,
                    size,
                    depfp,
                    fns: Vec::new(),
                    diags: Vec::new(),
                },
            );
            current = Some(path);
        } else if let Some(rest) = line.strip_prefix("G ") {
            let Some(path) = &current else {
                return HashMap::new();
            };
            let mut it = rest.split(' ');
            let parsed = (|| {
                let flags = u8::from_str_radix(it.next()?, 16).ok()?;
                let name = it.next()?;
                if name.is_empty() {
                    return None;
                }
                Some(FnSummary {
                    name: name.to_string(),
                    callees: it.map(str::to_string).collect(),
                    direct_impure: flags & 0x7,
                    length_source: flags & 0x8 != 0,
                })
            })();
            let Some(f) = parsed else {
                return HashMap::new();
            };
            out.get_mut(path)
                .expect("current implies entry")
                .fns
                .push(f);
        } else if let Some(rest) = line.strip_prefix("D ") {
            let Some(path) = &current else {
                return HashMap::new();
            };
            let mut it = rest.splitn(4, ' ');
            let parsed = (|| {
                let rule = static_rule_name(it.next()?)?;
                let line: usize = it.next()?.parse().ok()?;
                let col: usize = it.next()?.parse().ok()?;
                let message = unescape(it.next().unwrap_or(""))?;
                Some(Diagnostic {
                    rule,
                    path: path.clone(),
                    line,
                    col,
                    message,
                })
            })();
            let Some(d) = parsed else {
                return HashMap::new();
            };
            out.get_mut(path)
                .expect("current implies entry")
                .diags
                .push(d);
        } else if !line.is_empty() {
            return HashMap::new();
        }
    }
    out
}

/// One file's worth of state to persist: identity, depfp, summaries,
/// diagnostics.
struct CacheEntry {
    path: String,
    mtime_ns: u128,
    size: u64,
    depfp: u64,
    fns: Vec<FnSummary>,
    diags: Vec<Diagnostic>,
}

fn write_cache(cache_path: &Path, fingerprint: u64, entries: &[CacheEntry]) -> io::Result<()> {
    let mut text = format!("{HEADER} {fingerprint:016x}\n");
    for e in entries {
        let _ = writeln!(
            text,
            "F {} {} {:016x} {}",
            e.mtime_ns, e.size, e.depfp, e.path
        );
        for f in &e.fns {
            let flags = f.direct_impure | ((f.length_source as u8) << 3);
            let _ = write!(text, "G {flags:x} {}", f.name);
            for c in &f.callees {
                let _ = write!(text, " {c}");
            }
            text.push('\n');
        }
        for d in &e.diags {
            let _ = writeln!(
                text,
                "D {} {} {} {}",
                d.rule,
                d.line,
                d.col,
                escape(&d.message)
            );
        }
    }
    if let Some(parent) = cache_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(cache_path, text)
}

fn file_identity(path: &Path) -> Option<(u128, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?.duration_since(UNIX_EPOCH).ok()?;
    Some((mtime.as_nanos(), meta.len()))
}

/// [`crate::check_workspace`] with an incremental cache at `cache_path`.
///
/// Produces diagnostics identical to the cold path for any cache state
/// (pinned by `cached_runs_match_cold_run_exactly`); the cache file is
/// rewritten after every run. A cache write failure is swallowed — the
/// cache is an optimization, never a correctness dependency.
pub fn check_workspace_cached(
    root: &Path,
    cache_path: &Path,
) -> io::Result<(Vec<Diagnostic>, CacheStats)> {
    let base = Context::from_workspace(root)?;
    let fingerprint = context_fingerprint(root)?;
    let cache = load(cache_path, fingerprint);

    // Pass 1: establish each file's identity and its summaries — from
    // the cache on an identity hit (no file read), from a fresh parse
    // on a miss (the parse is kept for the check pass).
    struct Seen {
        rel: String,
        identity: Option<(u128, u64)>,
        id_hit: bool,
        parsed: Option<SourceFile>,
        summaries: FileSummaries,
    }
    let mut seen: Vec<Seen> = Vec::new();
    for path in walker::collect_files(root, false) {
        let rel = walker::rel_path(root, &path);
        if !rules_apply_to(&rel) {
            continue;
        }
        let identity = file_identity(&path);
        let id_hit = matches!(
            (identity, cache.get(&rel)),
            (Some((m, s)), Some(c)) if c.mtime_ns == m && c.size == s
        );
        let (parsed, summaries) = if id_hit {
            let summaries = FileSummaries {
                path: rel.clone(),
                fns: cache[&rel].fns.clone(),
            };
            (None, summaries)
        } else {
            let src = std::fs::read_to_string(&path)?;
            let file = SourceFile::new(rel.clone(), src);
            let summaries = summarize(&file);
            (Some(file), summaries)
        };
        seen.push(Seen {
            rel,
            identity,
            id_hit,
            parsed,
            summaries,
        });
    }

    // Pass 2: one workspace solve over the merged summaries, then the
    // per-file dependency fingerprints under the fresh facts.
    let all: Vec<FileSummaries> = seen.iter().map(|s| s.summaries.clone()).collect();
    let ctx = with_graph(&base, &all);
    let facts = &ctx.facts;

    let mut out = Vec::new();
    let mut entries: Vec<CacheEntry> = Vec::new();
    let mut stats = CacheStats { files: 0, hits: 0 };
    for s in seen {
        stats.files += 1;
        let depfp = dep_fingerprint(&s.summaries, facts);
        if s.id_hit && cache[&s.rel].depfp == depfp {
            let c = &cache[&s.rel];
            stats.hits += 1;
            out.extend(c.diags.iter().cloned());
            let (mtime_ns, size) = s.identity.expect("hit implies identity");
            entries.push(CacheEntry {
                path: s.rel,
                mtime_ns,
                size,
                depfp,
                fns: s.summaries.fns,
                diags: c.diags.clone(),
            });
            continue;
        }
        // Identity hit but depfp drift: the file was never read in pass
        // 1 — read it now for the recheck.
        let file = match s.parsed {
            Some(f) => f,
            None => {
                let src = std::fs::read_to_string(root.join(&s.rel))?;
                SourceFile::new(s.rel.clone(), src)
            }
        };
        let mut diags = Vec::new();
        check_file(&file, &ctx, &mut diags);
        out.extend(diags.iter().cloned());
        if let Some((mtime_ns, size)) = s.identity {
            entries.push(CacheEntry {
                path: s.rel,
                mtime_ns,
                size,
                depfp,
                fns: s.summaries.fns,
                diags,
            });
        }
    }
    sort_diags(&mut out);
    // All-hits runs rebuilt `entries` byte-for-byte from the loaded
    // cache (modulo files deleted from disk, which shrink it) — skip
    // the rewrite so fully-warm runs never touch the cache file.
    if stats.hits < stats.files || cache.len() != entries.len() {
        let _ = write_cache(cache_path, fingerprint, &entries);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_workspace;

    /// Scratch directory cleaned up on drop (no tempfile dependency in
    /// the offline build).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir()
                .join(format!("compso-lint-cache-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Builds a miniature workspace: an obs registry (required by
    /// `Context::from_workspace`) plus two first-party files, one with a
    /// deterministic suppression-hygiene finding.
    fn mini_workspace(root: &Path) {
        let obs = root.join("crates/obs/src");
        std::fs::create_dir_all(&obs).unwrap();
        std::fs::write(
            obs.join("names.rs"),
            "pub const STEP: &str = \"kfac/step\";\n",
        )
        .unwrap();
        let foo = root.join("crates/foo/src");
        std::fs::create_dir_all(&foo).unwrap();
        std::fs::write(foo.join("lib.rs"), "pub fn ok() {}\n").unwrap();
        std::fs::write(
            foo.join("dirty.rs"),
            "// lint:allow(no-such-rule): pinned finding\npub fn f() {}\n",
        )
        .unwrap();
    }

    #[test]
    fn cached_runs_match_cold_run_exactly() {
        let scratch = Scratch::new("equality");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");

        let cold = check_workspace(root).unwrap();
        assert!(
            cold.iter().any(|d| d.message.contains("no-such-rule")),
            "mini workspace must produce at least one finding: {cold:?}"
        );

        let (first, s1) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(first, cold, "cold cache run must equal uncached run");
        assert_eq!(s1.hits, 0);
        assert!(s1.files >= 2);

        let (second, s2) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(second, cold, "warm cache run must equal uncached run");
        assert_eq!(
            s2,
            CacheStats {
                files: s1.files,
                hits: s1.files
            }
        );
    }

    #[test]
    fn edited_file_is_rechecked_and_others_replay() {
        let scratch = Scratch::new("invalidate");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        // Different length, so invalidation cannot depend on mtime
        // granularity.
        let dirty = root.join("crates/foo/src/dirty.rs");
        std::fs::write(
            &dirty,
            "// lint:allow(still-not-a-rule): edited, new length\npub fn f() {}\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(stats.hits, stats.files - 1, "only the edit misses");
        assert!(diags.iter().any(|d| d.message.contains("still-not-a-rule")));
        assert!(!diags.iter().any(|d| d.message.contains("`no-such-rule`")));
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn registry_edit_invalidates_whole_cache() {
        let scratch = Scratch::new("context");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        std::fs::write(
            root.join("crates/obs/src/names.rs"),
            "pub const STEP: &str = \"kfac/step\";\npub const NEW: &str = \"kfac/new\";\n",
        )
        .unwrap();

        let (diags, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(
            stats.hits, 0,
            "registry edit must drop every cached verdict"
        );
        assert_eq!(diags, check_workspace(root).unwrap());
    }

    #[test]
    fn corrupt_cache_degrades_to_cold_run() {
        let scratch = Scratch::new("corrupt");
        let root = scratch.path();
        mini_workspace(root);
        let cache = root.join("lint-cache");
        let (_, _) = check_workspace_cached(root, &cache).unwrap();

        for garbage in [
            "not a cache at all\n".to_string(),
            "compso-lint-cache v2 0000000000000000\nF 1 2 x.rs\n".to_string(),
            "compso-lint-cache v3 0000000000000000\nF 1 2 0 x.rs\n".to_string(),
            std::fs::read_to_string(&cache).unwrap().replace("D ", "Z "),
            // A `G` record before any `F` is malformed.
            std::fs::read_to_string(&cache)
                .unwrap()
                .replacen('\n', "\nG 1 stray_fn\n", 1),
            // A truncated `G` record (flags but no fn name).
            std::fs::read_to_string(&cache).unwrap() + "G 1\n",
        ] {
            std::fs::write(&cache, garbage).unwrap();
            let (diags, _) = check_workspace_cached(root, &cache).unwrap();
            assert_eq!(diags, check_workspace(root).unwrap());
        }
    }

    #[test]
    fn helper_clamp_edit_recheck_is_exactly_the_dependents() {
        let scratch = Scratch::new("xfn");
        let root = scratch.path();
        mini_workspace(root);
        let helper = root.join("crates/foo/src/helper.rs");
        std::fs::write(
            &helper,
            "pub fn wire_len(r: &mut Reader<'_>) -> usize {\n    r.u32() as usize\n}\n",
        )
        .unwrap();
        let caller = root.join("crates/foo/src/caller.rs");
        std::fs::write(
            &caller,
            "pub fn decode(r: &mut Reader<'_>) -> Vec<u8> {\n    \
                 let n = wire_len(r);\n    \
                 let out = Vec::with_capacity(n);\n    \
                 out\n}\n",
        )
        .unwrap();
        let cache = root.join("lint-cache");

        let (first, _) = check_workspace_cached(root, &cache).unwrap();
        assert!(
            first
                .iter()
                .any(|d| d.rule == "unchecked-length-prefix" && d.path.ends_with("caller.rs")),
            "cross-file taint must reach the caller: {first:?}"
        );

        // Clamp the helper. caller.rs is untouched — a naive
        // (mtime, size) replay would keep its stale finding — but its
        // depfp references wire_len's facts, which just lost the
        // length-source flag, so exactly helper + caller re-run.
        std::fs::write(
            &helper,
            "pub fn wire_len(r: &mut Reader<'_>) -> usize {\n    \
                 checked_count(r.u32() as u64)\n}\n",
        )
        .unwrap();
        let (second, stats) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(
            stats.hits,
            stats.files - 2,
            "exactly the helper (identity) and its dependent (depfp) re-run"
        );
        assert!(
            !second.iter().any(|d| d.rule == "unchecked-length-prefix"),
            "clamped helper must clear the caller's finding: {second:?}"
        );
        assert_eq!(second, check_workspace(root).unwrap());

        // The rewrite repaired the cache: next run replays warm.
        let (third, s3) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(third, second);
        assert_eq!(s3.hits, s3.files);
    }

    #[test]
    fn impurity_edit_recheck_reaches_transitive_dependents() {
        // decide (critical root, ctrl) → helper_a (foo) → helper_b
        // (foo): a clock read appearing in helper_b must re-check
        // helper_b (identity), and both files whose facts shifted —
        // helper_a's file (its fn's impurity and nothing else changed)
        // and the root's file — while untouched bystanders replay.
        let scratch = Scratch::new("cone");
        let root = scratch.path();
        mini_workspace(root);
        std::fs::write(
            root.join("crates/foo/src/helpers.rs"),
            "pub fn helper_a() -> u64 { helper_b() }\n",
        )
        .unwrap();
        let hb = root.join("crates/foo/src/leaf.rs");
        std::fs::write(&hb, "pub fn helper_b() -> u64 { 7 }\n").unwrap();
        let ctrl = root.join("crates/ctrl/src");
        std::fs::create_dir_all(&ctrl).unwrap();
        std::fs::write(
            ctrl.join("controller.rs"),
            "pub fn decide(&mut self) -> u64 { helper_a() }\n",
        )
        .unwrap();
        let cache = root.join("lint-cache");

        let (first, _) = check_workspace_cached(root, &cache).unwrap();
        assert!(
            !first.iter().any(|d| d.rule == "deterministic-state"),
            "{first:?}"
        );

        // Introduce a clock read in the leaf: the deterministic-state
        // finding must appear at the leaf site even though only leaf.rs
        // changed on disk — its root cone comes from other files.
        std::fs::write(
            &hb,
            "pub fn helper_b() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        )
        .unwrap();
        let (second, stats) = check_workspace_cached(root, &cache).unwrap();
        assert!(
            second
                .iter()
                .any(|d| d.rule == "deterministic-state" && d.path.ends_with("leaf.rs")),
            "{second:?}"
        );
        assert_eq!(second, check_workspace(root).unwrap());
        // leaf.rs: identity miss. helpers.rs + controller.rs: depfp
        // drift (helper_a and decide turned impure). lib.rs, dirty.rs,
        // names.rs: replay.
        assert_eq!(
            stats.hits,
            stats.files - 3,
            "recheck = leaf + exactly its transitive dependents: {stats:?}"
        );

        // Reverting the leaf clears the finding and re-runs the same
        // cone; a further warm run is all hits again.
        std::fs::write(&hb, "pub fn helper_b() -> u64 { 7 }\n").unwrap();
        let (third, s3) = check_workspace_cached(root, &cache).unwrap();
        assert!(!third.iter().any(|d| d.rule == "deterministic-state"));
        assert_eq!(s3.hits, s3.files - 3);
        let (_, s4) = check_workspace_cached(root, &cache).unwrap();
        assert_eq!(s4.hits, s4.files);
    }

    #[test]
    fn message_escaping_roundtrips() {
        for msg in ["plain", "with\nnewline", "back\\slash", "\r\n mixed \\n"] {
            assert_eq!(unescape(&escape(msg)).as_deref(), Some(msg));
        }
        assert_eq!(unescape("bad \\q escape"), None);
    }
}
