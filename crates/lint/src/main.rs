//! The `compso-lint` CLI.
//!
//! ```text
//! compso-lint [--deny] [--json] [--json-out PATH] [--cache PATH] [--root PATH]
//! ```
//!
//! Walks the workspace (auto-detected by searching upward for the
//! `[workspace]` manifest, or given via `--root`), runs every rule over
//! production code, and prints human-readable `path:line:col` findings.
//! `--json` prints the machine-readable document to stdout instead;
//! `--json-out` writes it to a file (the CI artifact) in addition to
//! the human output. `--cache` enables the incremental file cache (see
//! [`compso_lint::cache`]) — diagnostics are identical either way, only
//! untouched files skip re-analysis. Exit status: `0` when clean, `1`
//! on findings with `--deny`, `2` on usage or IO errors.

use compso_lint::{check_workspace, check_workspace_cached, to_json};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut cache: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --json-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--cache" => match args.next() {
                Some(p) => cache = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --cache needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: compso-lint [--deny] [--json] [--json-out PATH] \
                     [--cache PATH] [--root PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("compso-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("compso-lint: no [workspace] Cargo.toml found (use --root)");
        return ExitCode::from(2);
    };

    let start = Instant::now();
    let checked = match &cache {
        Some(path) => check_workspace_cached(&root, path).map(|(d, s)| (d, Some(s))),
        None => check_workspace(&root).map(|d| (d, None)),
    };
    let (diags, stats) = match checked {
        Ok(d) => d,
        Err(e) => {
            eprintln!("compso-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed();

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json(&diags)) {
            eprintln!("compso-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        let cache_note = match stats {
            Some(s) => format!(" (cache: {}/{} hits)", s.hits, s.files),
            None => String::new(),
        };
        println!(
            "compso-lint: {} finding{} in {:.2?}{}{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            elapsed,
            cache_note,
            if deny { " (--deny)" } else { "" },
        );
    }

    if deny && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
