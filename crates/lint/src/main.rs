//! The `compso-lint` CLI.
//!
//! ```text
//! compso-lint [--deny] [--json] [--json-out PATH] [--cache PATH] [--root PATH]
//!             [--fix | --fix-dry-run] [--budget-ms N]
//! ```
//!
//! Walks the workspace (auto-detected by searching upward for the
//! `[workspace]` manifest, or given via `--root`), runs every rule over
//! production code, and prints human-readable `path:line:col` findings.
//! `--json` prints the machine-readable document to stdout instead;
//! `--json-out` writes it to a file (the CI artifact) in addition to
//! the human output. `--cache` enables the incremental file cache (see
//! [`compso_lint::cache`]) — diagnostics are identical either way, only
//! untouched files skip re-analysis.
//!
//! `--fix` applies the mechanical rewrites (see [`compso_lint::fix`])
//! and then lints the rewritten tree; `--fix-dry-run` only reports what
//! would be rewritten and exits 1 if any fix is pending (the CI gate
//! against committing auto-fixable findings). `--budget-ms N` fails the
//! run (exit 1) when the analysis takes longer than `N` milliseconds —
//! CI pins the cold and warm budgets with it.
//!
//! Exit status: `0` when clean, `1` on deny findings with `--deny`, on
//! pending fixes with `--fix-dry-run`, or on a blown `--budget-ms`;
//! `2` on usage or IO errors.

use compso_lint::rules::{severity_of, Severity};
use compso_lint::{check_workspace, check_workspace_cached, fix, to_json};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut cache: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut fix_apply = false;
    let mut fix_dry = false;
    let mut budget_ms: Option<u128> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--fix" => fix_apply = true,
            "--fix-dry-run" => fix_dry = true,
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => {
                    eprintln!("compso-lint: --budget-ms needs a number");
                    return ExitCode::from(2);
                }
            },
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --json-out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--cache" => match args.next() {
                Some(p) => cache = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --cache needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("compso-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: compso-lint [--deny] [--json] [--json-out PATH] \
                     [--cache PATH] [--root PATH] [--fix | --fix-dry-run] \
                     [--budget-ms N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("compso-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("compso-lint: no [workspace] Cargo.toml found (use --root)");
        return ExitCode::from(2);
    };

    if fix_apply && fix_dry {
        eprintln!("compso-lint: --fix and --fix-dry-run are mutually exclusive");
        return ExitCode::from(2);
    }
    if fix_apply || fix_dry {
        let report = match fix::run_fix(&root, fix_dry) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("compso-lint: fix: {e}");
                return ExitCode::from(2);
            }
        };
        let verb = if fix_dry { "would fix" } else { "fixed" };
        for d in &report.fixed {
            println!("{verb}: {}", d.human());
        }
        for (d, why) in &report.refused {
            println!("refused ({why}): {}", d.human());
        }
        if fix_dry {
            println!(
                "compso-lint: {} pending fix{}, {} refused",
                report.fixed.len(),
                if report.fixed.len() == 1 { "" } else { "es" },
                report.refused.len(),
            );
            return if report.fixed.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        // --fix falls through to a fresh lint of the rewritten tree.
    }

    let start = Instant::now();
    let checked = match &cache {
        Some(path) => check_workspace_cached(&root, path).map(|(d, s)| (d, Some(s))),
        None => check_workspace(&root).map(|d| (d, None)),
    };
    let (diags, stats) = match checked {
        Ok(d) => d,
        Err(e) => {
            eprintln!("compso-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed();

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json(&diags)) {
            eprintln!("compso-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        let cache_note = match stats {
            Some(s) => format!(" (cache: {}/{} hits)", s.hits, s.files),
            None => String::new(),
        };
        println!(
            "compso-lint: {} finding{} in {:.2?}{}{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            elapsed,
            cache_note,
            if deny { " (--deny)" } else { "" },
        );
    }

    if let Some(budget) = budget_ms {
        // Compare in µs: as_millis() truncates, which would let a
        // 10.9ms run sneak under a 10ms budget.
        if elapsed.as_micros() > budget.saturating_mul(1000) {
            eprintln!(
                "compso-lint: blew the --budget-ms {budget} budget ({:.2?})",
                elapsed
            );
            return ExitCode::FAILURE;
        }
    }
    let denied = diags.iter().any(|d| severity_of(d.rule) == Severity::Deny);
    if deny && denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
