//! Diagnostics, the shared analysis context, and the driver that runs
//! the rule table over a file set.
//!
//! The engine owns three cross-cutting concerns the rules stay out of:
//! **scoping** (a rule only runs on files its [`crate::rules::RuleSpec`]
//! covers), **suppression filtering** (a diagnostic on a line covered by
//! a matching `// lint:allow(rule): reason` comment is dropped) and
//! **suppression hygiene** (an allow without a reason, or naming an
//! unknown rule, is itself a diagnostic — suppressions are part of the
//! invariant surface, not an escape hatch).

use crate::callgraph::{self, FileSummaries, FnFacts};
use crate::rules::{severity_of, RULES, RULE_NAMES};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// The rule name used for suppression-hygiene findings.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// One finding, pointing at a workspace-relative `path:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: [rule] message` — the human rendering.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a stable JSON document (the CI artifact):
/// the findings, the total, and per-rule counts for every rule in the
/// catalogue (zeros included, so the artifact schema never shifts).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
             \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            severity_of(d.rule).as_str(),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"by_rule\": {\n");
    for (i, name) in RULE_NAMES.iter().enumerate() {
        let n = diags.iter().filter(|d| d.rule == *name).count();
        let _ = write!(out, "    \"{name}\": {n}");
        out.push_str(if i + 1 < RULE_NAMES.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(out, "  }},\n  \"count\": {}\n}}\n", diags.len());
    out
}

/// Workspace-level facts the rules consult: the obs name registry, the
/// wire-magic registry (value → constant name, for `--fix`), the
/// length-source set (PR 8 cross-function taint), and the call-graph
/// facts (v3 — see [`crate::callgraph`]).
///
/// The registries are recovered by lexing their defining files
/// (`crates/obs/src/names.rs`, `crates/core/src/wire.rs`) — the same
/// shapes their own self-parsing tests pin, so the two cannot drift.
pub struct Context {
    pub registered_names: BTreeSet<String>,
    pub length_sources: BTreeSet<String>,
    /// Workspace call-graph facts by function name (empty in
    /// single-file runs; rules union in a local per-file solve).
    pub facts: BTreeMap<String, FnFacts>,
    /// Wire magic value → constant name (`0xC5` → `MAGIC_STREAM_V1`).
    pub magic_names: BTreeMap<u8, String>,
}

impl Context {
    /// Build the context from a workspace root on disk. Length sources
    /// and call-graph facts start empty; the workspace drivers fill
    /// them in from the summary pre-pass (see [`with_graph`]).
    pub fn from_workspace(root: &Path) -> std::io::Result<Context> {
        let names_src = std::fs::read_to_string(root.join("crates/obs/src/names.rs"))?;
        // The magic registry is optional (mini test workspaces): no
        // wire.rs just means `--fix` has no names to rewrite to.
        let magic_names = std::fs::read_to_string(root.join("crates/core/src/wire.rs"))
            .map(|src| parse_magic_names(&src))
            .unwrap_or_default();
        Ok(Context {
            registered_names: parse_registered_names(&names_src),
            length_sources: BTreeSet::new(),
            facts: BTreeMap::new(),
            magic_names,
        })
    }

    /// A synthetic context (fixture tests).
    pub fn with_names<I: IntoIterator<Item = String>>(names: I) -> Context {
        Context {
            registered_names: names.into_iter().collect(),
            length_sources: BTreeSet::new(),
            facts: BTreeMap::new(),
            magic_names: BTreeMap::new(),
        }
    }
}

/// Complete a base context with the workspace call graph: solve the
/// summaries into [`Context::facts`] and derive the length-source set
/// from the summary flags.
pub fn with_graph(base: &Context, summaries: &[FileSummaries]) -> Context {
    let facts = callgraph::solve(summaries);
    let mut length_sources = base.length_sources.clone();
    length_sources.extend(
        facts
            .iter()
            .filter(|(_, f)| f.length_source)
            .map(|(n, _)| n.clone()),
    );
    Context {
        registered_names: base.registered_names.clone(),
        length_sources,
        facts,
        magic_names: base.magic_names.clone(),
    }
}

/// Pre-pass for cross-function length taint: union the length-source
/// function names contributed by every file in the set.
pub fn collect_length_sources_from(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in files {
        out.extend(crate::rules::length_prefix::collect_length_sources(f));
    }
    out
}

/// Extract every `const IDENT: &str = "value";` string from a source
/// file (token-based, so comments and test strings don't leak in).
pub fn parse_registered_names(src: &str) -> BTreeSet<String> {
    let f = SourceFile::new("names.rs".into(), src.to_string());
    let code = f.code_tokens();
    let text = |ci: usize| f.tokens[code[ci]].text(&f.src);
    let mut out = BTreeSet::new();
    for i in 0..code.len() {
        // const NAME : & str = "…"
        if text(i) == "const"
            && i + 6 < code.len()
            && text(i + 2) == ":"
            && text(i + 3) == "&"
            && text(i + 4) == "str"
            && text(i + 5) == "="
        {
            let lit = text(i + 6);
            if let Some(stripped) = lit.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                out.insert(stripped.to_string());
            }
        }
    }
    out
}

/// Extract `const NAME: u8 = 0xCx;` magic definitions (value → name)
/// from the wire registry source.
pub fn parse_magic_names(src: &str) -> BTreeMap<u8, String> {
    let f = SourceFile::new("wire.rs".into(), src.to_string());
    let code = f.code_tokens();
    let text = |ci: usize| f.tokens[code[ci]].text(&f.src);
    let mut out = BTreeMap::new();
    for i in 0..code.len() {
        // const NAME : u8 = 0xC5
        if text(i) == "const"
            && i + 5 < code.len()
            && text(i + 2) == ":"
            && text(i + 3) == "u8"
            && text(i + 4) == "="
        {
            if let Some(value) = crate::rules::wire_magic_value(text(i + 5)) {
                out.entry(value).or_insert_with(|| text(i + 1).to_string());
            }
        }
    }
    out
}

/// Run every applicable rule over `file`, apply suppressions, and
/// append suppression-hygiene findings. Scope comes from the rule
/// table; a file no rule covers yields only hygiene findings.
pub fn check_file(file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
    let mut raw = Vec::new();
    for spec in RULES {
        if spec.applies_to(&file.path) {
            spec.rule().check(file, ctx, &mut raw);
        }
    }
    raw.retain(|d| !file.is_suppressed(d.rule, d.line));
    out.extend(raw);

    for s in &file.suppressions {
        if !RULE_NAMES.contains(&s.rule.as_str()) {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    s.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !s.has_reason {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "lint:allow({}) without a reason; write `lint:allow({}): why`",
                    s.rule, s.rule
                ),
            });
        }
    }
    // Hygiene findings on a line can themselves be silenced only by a
    // well-formed allow for suppression-hygiene.
    out.retain(|d| {
        d.rule != SUPPRESSION_HYGIENE || !file.is_suppressed(SUPPRESSION_HYGIENE, d.line)
    });
}

/// The one canonical diagnostic order: path, line, column, rule — used
/// by both the cold driver and the incremental cache so their outputs
/// compare equal byte-for-byte.
pub fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Check a whole file set, returning diagnostics sorted by path, line,
/// column, rule — a stable order for golden tests and CI artifacts.
///
/// Runs the call-graph pre-pass first ([`crate::callgraph::summarize`]
/// per file, one [`crate::callgraph::solve`] over the set) so the
/// cross-function rules see helpers defined in *other* files.
pub fn check_files(files: &[SourceFile], ctx: &Context) -> Vec<Diagnostic> {
    let summaries: Vec<FileSummaries> = files.iter().map(callgraph::summarize).collect();
    let ctx_full = with_graph(ctx, &summaries);
    let mut out = Vec::new();
    for f in files {
        check_file(f, &ctx_full, &mut out);
    }
    sort_diags(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parsing_matches_const_shape() {
        let src = r#"
            //! docs mentioning "core/fake" in a comment
            pub const A: &str = "comm/recv";
            pub(crate) const B: &str = "kfac/step";
            pub const NOT_A_NAME: u32 = 7;
            #[cfg(test)]
            mod tests {
                const T: &str = "test/only";
            }
        "#;
        let names = parse_registered_names(src);
        assert!(names.contains("comm/recv"));
        assert!(names.contains("kfac/step"));
        assert!(names.contains("test/only")); // const-shaped, still collected
        assert!(!names.contains("core/fake")); // comments never leak in
    }

    #[test]
    fn magic_parsing_matches_const_shape() {
        let src = "pub mod magic {\n\
                       pub const MAGIC_STREAM_V1: u8 = 0xC5;\n\
                       pub const MAGIC_FRAME: u8 = 0xCF;\n\
                       pub const NOT_MAGIC: u8 = 0x17;\n\
                       pub const NOT_U8: u32 = 0xC5C5;\n\
                   }\n";
        let magics = parse_magic_names(src);
        assert_eq!(
            magics.get(&0xC5).map(String::as_str),
            Some("MAGIC_STREAM_V1")
        );
        assert_eq!(magics.get(&0xCF).map(String::as_str), Some("MAGIC_FRAME"));
        assert_eq!(magics.len(), 2);
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_flagged() {
        let src = "// lint:allow(no-such-rule): whatever\n\
                   // lint:allow(no-unwrap-on-comm-path)\n\
                   fn f() {}\n";
        let f = SourceFile::new("crates/comm/src/x.rs".into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == SUPPRESSION_HYGIENE));
        assert!(out[0].message.contains("no-such-rule"));
        assert!(out[1].message.contains("without a reason"));
    }

    #[test]
    fn json_is_well_formed_ish() {
        let diags = vec![Diagnostic {
            rule: "wire-magic-registry",
            path: "a/b.rs".into(),
            line: 3,
            col: 9,
            message: "bare \"magic\"".into(),
        }];
        let j = to_json(&diags);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"magic\\\""));
        assert!(j.contains("\"severity\": \"deny\""));
        assert!(j.contains("\"wire-magic-registry\": 1"));
        assert!(
            j.contains("\"collective-order\": 0"),
            "zeros keep the schema"
        );
    }
}
