//! Diagnostics, the shared analysis context, and the driver that runs
//! every rule over a file set.
//!
//! The engine owns two cross-cutting concerns the rules stay out of:
//! **suppression filtering** (a diagnostic on a line covered by a
//! matching `// lint:allow(rule): reason` comment is dropped) and
//! **suppression hygiene** (an allow without a reason, or naming an
//! unknown rule, is itself a diagnostic — suppressions are part of the
//! invariant surface, not an escape hatch).

use crate::rules::{all_rules, RULE_NAMES};
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// The rule name used for suppression-hygiene findings.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// One finding, pointing at a workspace-relative `path:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: [rule] message` — the human rendering.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a stable JSON document (the CI artifact).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    let _ = write!(out, "  ],\n  \"count\": {}\n}}\n", diags.len());
    out
}

/// Workspace-level facts the rules consult: the set of counter / span /
/// label names registered in `compso_obs::names`, and the set of
/// length-source functions (helpers returning unclamped wire-read
/// lengths) collected across the whole file set for cross-function
/// taint in `unchecked-length-prefix`.
///
/// The registry is recovered by lexing `crates/obs/src/names.rs` and
/// collecting every `const NAME: &str = "…";` — the same shape the
/// registry's own self-parsing test pins, so the two cannot drift.
pub struct Context {
    pub registered_names: BTreeSet<String>,
    pub length_sources: BTreeSet<String>,
}

impl Context {
    /// Build the context from a workspace root on disk. Length sources
    /// start empty; the workspace drivers fill them in from a pre-pass
    /// over the file set (see [`collect_length_sources_from`]).
    pub fn from_workspace(root: &Path) -> std::io::Result<Context> {
        let names_src = std::fs::read_to_string(root.join("crates/obs/src/names.rs"))?;
        Ok(Context {
            registered_names: parse_registered_names(&names_src),
            length_sources: BTreeSet::new(),
        })
    }

    /// A synthetic context (fixture tests).
    pub fn with_names<I: IntoIterator<Item = String>>(names: I) -> Context {
        Context {
            registered_names: names.into_iter().collect(),
            length_sources: BTreeSet::new(),
        }
    }
}

/// Pre-pass for cross-function length taint: union the length-source
/// function names contributed by every file in the set.
pub fn collect_length_sources_from(files: &[SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in files {
        out.extend(crate::rules::length_prefix::collect_length_sources(f));
    }
    out
}

/// Extract every `const IDENT: &str = "value";` string from a source
/// file (token-based, so comments and test strings don't leak in).
pub fn parse_registered_names(src: &str) -> BTreeSet<String> {
    let f = SourceFile::new("names.rs".into(), src.to_string());
    let code = f.code_tokens();
    let text = |ci: usize| f.tokens[code[ci]].text(&f.src);
    let mut out = BTreeSet::new();
    for i in 0..code.len() {
        // const NAME : & str = "…"
        if text(i) == "const"
            && i + 6 < code.len()
            && text(i + 2) == ":"
            && text(i + 3) == "&"
            && text(i + 4) == "str"
            && text(i + 5) == "="
        {
            let lit = text(i + 6);
            if let Some(stripped) = lit.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                out.insert(stripped.to_string());
            }
        }
    }
    out
}

/// Run every rule over `file`, apply suppressions, and append
/// suppression-hygiene findings.
pub fn check_file(file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
    let mut raw = Vec::new();
    for rule in all_rules() {
        rule.check(file, ctx, &mut raw);
    }
    raw.retain(|d| !file.is_suppressed(d.rule, d.line));
    out.extend(raw);

    for s in &file.suppressions {
        if !RULE_NAMES.contains(&s.rule.as_str()) {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    s.rule,
                    RULE_NAMES.join(", ")
                ),
            });
        } else if !s.has_reason {
            out.push(Diagnostic {
                rule: SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: s.line,
                col: 1,
                message: format!(
                    "lint:allow({}) without a reason; write `lint:allow({}): why`",
                    s.rule, s.rule
                ),
            });
        }
    }
    // Hygiene findings on a line can themselves be silenced only by a
    // well-formed allow for suppression-hygiene.
    out.retain(|d| {
        d.rule != SUPPRESSION_HYGIENE || !file.is_suppressed(SUPPRESSION_HYGIENE, d.line)
    });
}

/// The one canonical diagnostic order: path, line, column, rule — used
/// by both the cold driver and the incremental cache so their outputs
/// compare equal byte-for-byte.
pub fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Check a whole file set, returning diagnostics sorted by path, line,
/// column, rule — a stable order for golden tests and CI artifacts.
///
/// Runs the length-source pre-pass first so cross-function taint sees
/// helpers defined in *other* files of the set.
pub fn check_files(files: &[SourceFile], ctx: &Context) -> Vec<Diagnostic> {
    let mut ctx_full = Context {
        registered_names: ctx.registered_names.clone(),
        length_sources: ctx.length_sources.clone(),
    };
    ctx_full
        .length_sources
        .extend(collect_length_sources_from(files));
    let mut out = Vec::new();
    for f in files {
        check_file(f, &ctx_full, &mut out);
    }
    sort_diags(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parsing_matches_const_shape() {
        let src = r#"
            //! docs mentioning "core/fake" in a comment
            pub const A: &str = "comm/recv";
            pub(crate) const B: &str = "kfac/step";
            pub const NOT_A_NAME: u32 = 7;
            #[cfg(test)]
            mod tests {
                const T: &str = "test/only";
            }
        "#;
        let names = parse_registered_names(src);
        assert!(names.contains("comm/recv"));
        assert!(names.contains("kfac/step"));
        assert!(names.contains("test/only")); // const-shaped, still collected
        assert!(!names.contains("core/fake")); // comments never leak in
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_flagged() {
        let src = "// lint:allow(no-such-rule): whatever\n\
                   // lint:allow(no-unwrap-on-comm-path)\n\
                   fn f() {}\n";
        let f = SourceFile::new("crates/comm/src/x.rs".into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == SUPPRESSION_HYGIENE));
        assert!(out[0].message.contains("no-such-rule"));
        assert!(out[1].message.contains("without a reason"));
    }

    #[test]
    fn json_is_well_formed_ish() {
        let diags = vec![Diagnostic {
            rule: "wire-magic-registry",
            path: "a/b.rs".into(),
            line: 3,
            col: 9,
            message: "bare \"magic\"".into(),
        }];
        let j = to_json(&diags);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"magic\\\""));
    }
}
