//! `nondeterministic-wire-iteration`: iteration order must not leak
//! into wire bytes.
//!
//! `HashMap` iteration order is randomized per process. If an encoder, a
//! snapshot builder, or any other wire-producing function walks a
//! `HashMap` while emitting bytes, two ranks (or two runs) produce
//! different bytes for the same state — breaking the bit-identical
//! replica invariant the distributed tests pin, and breaking checkpoint
//! fingerprints. Wire-adjacent code must use `BTreeMap` or collect and
//! sort before emitting.
//!
//! Heuristic (production code only):
//!
//! 1. Collect the file's *hashmap-ish identifiers*: `name: HashMap<…>`
//!    annotations (struct fields, lets, fn params) and `let name =
//!    HashMap::new()/with_capacity()/from(…)` bindings.
//! 2. Inside functions whose name suggests wire output (`encode`,
//!    `compress`, `serialize`, `snapshot`, `to_bytes`, `write`,
//!    `export`, `save`, `frame`), flag `h.iter()/keys()/values()/
//!    drain()/into_iter()` calls and `for … in … h …` loop headers over
//!    those identifiers.
//!
//! A deliberate iterate-then-sort is fine — annotate it with
//! `lint:allow(nondeterministic-wire-iteration): sorted before encoding`.

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub struct NondeterministicWireIteration;

const NAME: &str = "nondeterministic-wire-iteration";

/// Substrings of function names that mark wire-producing paths.
const WIRE_FNS: &[&str] = &[
    "encode",
    "compress",
    "serialize",
    "snapshot",
    "to_bytes",
    "write",
    "export",
    "save",
    "frame",
];

/// Iterator adaptors whose call on a HashMap leaks ordering.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

impl Rule for NondeterministicWireIteration {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        let maps = hashmap_idents(&v);
        if maps.is_empty() {
            return;
        }
        for f in &file.fns {
            if f.body.is_empty() || file.in_test(f.body.start) {
                continue;
            }
            let fname = f.name.to_ascii_lowercase();
            if !WIRE_FNS.iter().any(|w| fname.contains(w)) {
                continue;
            }
            let body: Vec<usize> = (0..v.len())
                .filter(|&ci| f.body.contains(&v.tok(ci).start))
                .collect();
            for (pos, &ci) in body.iter().enumerate() {
                if v.kind(ci) != TokenKind::Ident || !maps.contains(v.text(ci)) {
                    continue;
                }
                let fire = is_iter_call(&v, &body, pos) || in_for_header(&v, &body, pos);
                if fire {
                    let map = v.text(ci).to_string();
                    out.push(v.diag(
                        NAME,
                        ci,
                        format!(
                            "iteration over HashMap `{map}` in wire-producing fn `{}`; \
                             use BTreeMap or sort before bytes are emitted",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers bound or annotated as `HashMap` anywhere in the file.
/// Shared with the call-graph pass ([`crate::callgraph`]), which treats
/// HashMap iteration as an impurity source in *any* function.
pub(crate) fn hashmap_idents(v: &View) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for ci in 0..v.len() {
        if !v.is_ident(ci, "HashMap") {
            continue;
        }
        // `name : HashMap <` — field, let, or parameter annotation.
        if ci >= 2 && v.is_punct(ci - 1, ":") && v.kind(ci - 2) == TokenKind::Ident {
            out.insert(v.text(ci - 2).to_string());
        }
        // `let [mut] name = HashMap :: …` — constructor binding.
        if ci >= 2 && v.is_punct(ci - 1, "=") {
            let mut k = ci - 2;
            if v.kind(k) == TokenKind::Ident && !v.is_ident(k, "mut") {
                out.insert(v.text(k).to_string());
            } else if v.is_ident(k, "mut") && k >= 1 {
                k -= 1;
                if v.kind(k) == TokenKind::Ident {
                    out.insert(v.text(k).to_string());
                }
            }
        }
    }
    out
}

/// `map . iter (` style call at body position `pos`.
pub(crate) fn is_iter_call(v: &View, body: &[usize], pos: usize) -> bool {
    if pos + 3 > body.len() {
        return false;
    }
    let (dot, method) = (body[pos + 1], body[pos + 2]);
    v.is_punct(dot, ".")
        && v.kind(method) == TokenKind::Ident
        && ITER_METHODS.contains(&v.text(method))
        && body.get(pos + 3).is_some_and(|&p| v.is_punct(p, "("))
}

/// Is `pos` inside a `for … in … { ` header (between `for` and its `{`)?
pub(crate) fn in_for_header(v: &View, body: &[usize], pos: usize) -> bool {
    // Walk back looking for `for` before any `{`/`;`/`}` boundary.
    let mut saw_in = false;
    let mut k = pos;
    while k > 0 {
        k -= 1;
        let ci = body[k];
        if v.is_punct(ci, "{") || v.is_punct(ci, "}") || v.is_punct(ci, ";") {
            return false;
        }
        if v.is_ident(ci, "in") {
            saw_in = true;
        }
        if v.is_ident(ci, "for") {
            return saw_in;
        }
    }
    false
}
