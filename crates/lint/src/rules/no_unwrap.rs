//! `no-unwrap-on-comm-path`: no `.unwrap()` / `.expect(…)` in the
//! fallible communication stack.
//!
//! PR 3 made the comm stack fallible end to end: collectives return
//! `Result<_, CommError>` and the distributed K-FAC step threads those
//! errors up instead of tearing the process down. A stray `unwrap` in
//! that path silently converts a recoverable peer failure back into a
//! whole-rank panic — exactly the regression class this rule pins.
//!
//! Scope:
//! - **`crates/comm/src/`**: all production code. The comm crate *is*
//!   the fallible path.
//! - **`crates/kfac/src/`**: production code inside functions whose
//!   signature mentions `Result` (the analyzer's definition of the
//!   fallible K-FAC path — `DistKfac::step`, checkpoint restore, …).
//!   Infallible single-process helpers (`Kfac::step`, `Sgd::step`) have
//!   no error channel to convert into and stay out of scope.
//!
//! Provably-infallible cases stay, but must carry an explicit
//! `// lint:allow(no-unwrap-on-comm-path): reason` so the proof is
//! written next to the claim.

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::source::SourceFile;

pub struct NoUnwrapOnCommPath;

const NAME: &str = "no-unwrap-on-comm-path";

impl Rule for NoUnwrapOnCommPath {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        // Path scope (comm + kfac) comes from the rule table; what stays
        // here is the *behavioral* refinement: kfac is only in scope
        // inside fallible (Result-signature) functions.
        let kfac = file.path.starts_with("crates/kfac/src/");
        let v = View::new(file);
        for ci in 1..v.len() {
            let method = v.text(ci);
            if !(method == "unwrap" || method == "expect") {
                continue;
            }
            if !v.is_punct(ci - 1, ".") || !v.is_punct(ci + 1, "(") {
                continue;
            }
            let at = v.tok(ci).start;
            if file.in_test(at) {
                continue;
            }
            if kfac {
                // Only inside fallible functions.
                let fallible = file.enclosing_fn(at).is_some_and(|f| f.returns_result);
                if !fallible {
                    continue;
                }
            }
            out.push(v.diag(
                NAME,
                ci,
                format!(
                    ".{method}() on the fallible path; return CommError \
                     (poisoned mutex => CommError::Poisoned) or annotate \
                     lint:allow({NAME}): <proof>"
                ),
            ));
        }
    }
}
