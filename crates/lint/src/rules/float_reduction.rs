//! `float-reduction-order`: float reductions must have a *fixed*
//! association order.
//!
//! Float addition is not associative: `(a + b) + c != a + (b + c)` in
//! general, so a parallel `sum`/`reduce` whose chunking depends on the
//! thread pool produces run-to-run (and rank-to-rank) different bits —
//! exactly the drift the bit-identity tests exist to catch. The
//! workspace's vendored rayon shim happens to fold in input order, but
//! code written against the rayon *API contract* must not rely on that:
//! swapping in real rayon would silently break every replica invariant.
//!
//! The sanctioned home for float reductions is
//! `crates/tensor/src/reduce.rs` (table-excluded): the scalar oracles
//! and the fixed-chunking hierarchical reductions that every parallel
//! kernel is pinned against. Everywhere else, a `.sum()`/`.reduce(…)`
//! downstream of `par_iter`/`par_chunks`/`into_par_iter` in a
//! float-typed expression fires.
//!
//! Heuristic (production code): within one statement, a parallel
//! iterator source followed by a `sum`/`reduce` sink, with float
//! evidence (an `f32`/`f64` token in the statement or the enclosing
//! function's signature). Integer reductions are associative and never
//! fire.

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct FloatReductionOrder;

const NAME: &str = "float-reduction-order";

/// Parallel-iterator sources (the vendored shim's API surface).
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

impl Rule for FloatReductionOrder {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        for f in &file.fns {
            if f.body.is_empty() || file.in_test(f.body.start) {
                continue;
            }
            let sig_float = {
                let sig: Vec<usize> = (0..v.len())
                    .filter(|&ci| {
                        let s = v.tok(ci).start;
                        s >= f.kw_start && s < f.body.start
                    })
                    .collect();
                sig.iter().any(|&ci| is_float_token(&v, ci))
            };
            let body = v.in_range(&f.body);
            for pos in 0..body.len() {
                // Sink: `. sum (` / `. sum ::` / `. reduce (`.
                let ci = body[pos];
                if v.kind(ci) != TokenKind::Ident {
                    continue;
                }
                let m = v.text(ci);
                if !(m == "sum" || m == "reduce") {
                    continue;
                }
                if pos == 0 || !v.is_punct(body[pos - 1], ".") {
                    continue;
                }
                let next = body.get(pos + 1).copied();
                let called = next.is_some_and(|n| v.is_punct(n, "(") || v.is_punct(n, ":"));
                if !called {
                    continue;
                }
                // Statement start: previous `;` / `{` / `}` boundary.
                let mut start = pos;
                while start > 0 {
                    let p = body[start - 1];
                    if v.is_punct(p, ";") || v.is_punct(p, "{") || v.is_punct(p, "}") {
                        break;
                    }
                    start -= 1;
                }
                let par = body[start..pos]
                    .iter()
                    .any(|&c| v.kind(c) == TokenKind::Ident && PAR_SOURCES.contains(&v.text(c)));
                if !par {
                    continue;
                }
                // Float evidence: statement (incl. a turbofish after the
                // sink) or signature.
                let stmt_end = (pos + 6).min(body.len());
                let float =
                    sig_float || body[start..stmt_end].iter().any(|&c| is_float_token(&v, c));
                if !float {
                    continue;
                }
                out.push(v.diag(
                    NAME,
                    ci,
                    format!(
                        "unordered parallel float `{m}` in `{}`; float addition is not \
                         associative, so chunking leaks into the bits — use the \
                         fixed-order reductions in crates/tensor/src/reduce.rs or a \
                         sequential fold",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// Is token `ci` float evidence: an `f32`/`f64` ident or a float literal?
fn is_float_token(v: &View, ci: usize) -> bool {
    match v.kind(ci) {
        TokenKind::Float => true,
        TokenKind::Ident => matches!(v.text(ci), "f32" | "f64"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        out.retain(|d| d.rule == NAME);
        out
    }

    #[test]
    fn parallel_float_sum_fires() {
        let out = diags(
            "crates/tensor/src/dense.rs",
            "pub fn norm2(xs: &[f32]) -> f32 {\n\
                 xs.par_iter().map(|x| x * x).sum::<f32>()\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("not associative"));
    }

    #[test]
    fn parallel_float_reduce_fires() {
        let out = diags(
            "crates/kfac/src/stats.rs",
            "pub fn total(xs: &[f64]) -> f64 {\n\
                 xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b)\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn integer_and_sequential_reductions_are_clean() {
        let out = diags(
            "crates/tensor/src/dense.rs",
            "pub fn count(xs: &[u32]) -> u32 { xs.par_iter().copied().sum() }\n\
             pub fn seq(xs: &[f32]) -> f32 { xs.iter().copied().sum() }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn oracle_module_is_table_excluded() {
        let out = diags(
            "crates/tensor/src/reduce.rs",
            "pub fn sum_hier(xs: &[f32]) -> f32 {\n\
                 xs.par_chunks(4096).map(sum_flat).sum::<f32>()\n}\n",
        );
        assert!(out.is_empty(), "reduce.rs is the sanctioned home: {out:?}");
    }
}
