//! `swallowed-comm-error`: `let _ = <comm call>` silently discards a
//! `CommError`.
//!
//! PR 3 made the comm stack fallible end to end so peer failures surface
//! as errors instead of hangs. Binding a collective or send result to
//! `_` undoes that: the error is computed, then dropped on the floor,
//! and the caller proceeds as if the group were healthy — the same
//! regression class as `no-unwrap-on-comm-path`, in the opposite
//! direction.
//!
//! Heuristic (production comm/kfac code): a `let _ = …;` statement whose
//! initializer calls a collective ([`super::COLLECTIVES`]), a
//! transitively-collective helper (call-graph facts), or a raw send
//! (`send`, `send_raw_frame`). A `?` anywhere in the statement means the
//! error already propagated (`let _ = x?;` discards only the Ok value)
//! and is clean.
//!
//! `--fix` rewrites `let _ = EXPR;` to `EXPR?;` when the enclosing
//! function returns `Result` (see `crate::fix`). Genuinely best-effort
//! sends (ACKs, rejoin advertisements) must say so:
//! `lint:allow(swallowed-comm-error): <why best-effort is correct>`.

use super::{Rule, View, COLLECTIVES};
use crate::callgraph::file_facts;
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct SwallowedCommError;

const NAME: &str = "swallowed-comm-error";

/// Raw point-to-point sends whose `Result` must not be dropped.
const SENDS: &[&str] = &["send", "send_raw_frame"];

impl Rule for SwallowedCommError {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        let facts = file_facts(file, ctx);
        for stmt in let_underscore_stmts(&v) {
            if file.in_test(v.tok(stmt.start).start) {
                continue;
            }
            // Already propagated?
            if (stmt.clone()).any(|ci| v.is_punct(ci, "?")) {
                continue;
            }
            for ci in stmt.clone() {
                if v.kind(ci) != TokenKind::Ident || ci + 1 >= v.len() || !v.is_punct(ci + 1, "(") {
                    continue;
                }
                let callee = v.text(ci);
                let fallible = COLLECTIVES.contains(&callee)
                    || SENDS.contains(&callee)
                    || facts.collective(callee);
                if !fallible {
                    continue;
                }
                out.push(v.diag(
                    NAME,
                    ci,
                    format!(
                        "`let _ = …` discards the Result of comm call `{callee}`; \
                         propagate it (`{callee}(…)?`, see --fix) or annotate \
                         lint:allow({NAME}): <why best-effort is correct here>"
                    ),
                ));
                break; // one finding per statement
            }
        }
    }
}

/// Code-index ranges of `let _ = … ;` statements: from the `let` token
/// through the terminating `;` (exclusive), tracked at bracket depth 0.
pub(crate) fn let_underscore_stmts(v: &View) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    for ci in 0..v.len().saturating_sub(2) {
        if !(v.is_ident(ci, "let") && v.text(ci + 1) == "_" && v.is_punct(ci + 2, "=")) {
            continue;
        }
        let mut depth = 0i32;
        let mut end = ci + 3;
        while end < v.len() {
            if v.is_punct(end, "(") || v.is_punct(end, "[") || v.is_punct(end, "{") {
                depth += 1;
            } else if v.is_punct(end, ")") || v.is_punct(end, "]") || v.is_punct(end, "}") {
                depth -= 1;
            } else if v.is_punct(end, ";") && depth == 0 {
                break;
            }
            end += 1;
        }
        if end < v.len() {
            out.push(ci..end);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        out.retain(|d| d.rule == NAME);
        out
    }

    #[test]
    fn discarded_collective_fires() {
        let out = diags(
            "crates/comm/src/x.rs",
            "fn quiesce(c: &mut C) {\n    let _ = c.barrier();\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`barrier`"));
    }

    #[test]
    fn discarded_transitive_collective_fires() {
        let out = diags(
            "crates/kfac/src/x.rs",
            "fn helper(c: &mut C) -> Result<(), E> { c.allreduce_sum(&mut []) }\n\
             fn step(c: &mut C) {\n    let _ = helper(c);\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn propagated_and_bound_results_are_clean() {
        let out = diags(
            "crates/comm/src/x.rs",
            "fn a(c: &mut C) -> Result<(), E> {\n    let _ = c.barrier()?;\n    Ok(())\n}\n\
             fn b(c: &mut C) -> Result<(), E> {\n    let r = c.barrier();\n    r\n}\n\
             fn d(c: &mut C) {\n    let _ = c.infallible_thing();\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
