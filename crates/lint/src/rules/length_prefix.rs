//! `unchecked-length-prefix`: a length read from the wire must be
//! bounds-checked before it sizes an allocation.
//!
//! Every decoder in this workspace reads `u32`/`u64` length prefixes
//! from untrusted bytes (hostile-payload tests forge them on purpose).
//! Feeding such a length straight into `Vec::with_capacity`, a
//! `vec![0u8; n]`, or a `take(n)` lets a 4-byte payload demand a
//! multi-gigabyte allocation. The sanctioned pattern is the one
//! `compso_core::wire` provides: clamp through `checked_count` /
//! compare against `Reader::remaining` *before* allocating.
//!
//! Heuristic (token-level, per function body, production code only):
//!
//! 1. A `let` statement whose initializer calls `.u32()` / `.u64()`
//!    *taints* the bound identifier — unless the same statement already
//!    guards it (e.g. `let n = checked_count(r.u32()? as u64)?;`).
//! 2. A later statement mentioning the identifier together with a guard
//!    marker (a `<`/`>`/`==`/`!=` comparison, `min`/`max`, or a call
//!    whose name contains `check`/`ensure`/`remaining`/`bound`/`assert`
//!    or starts with `MAX`) clears the taint — comparisons against
//!    trusted expectations are this codebase's sanctioned validation
//!    shape. Re-binding the name clears it too.
//! 3. A statement that uses a still-tainted identifier **as an
//!    allocation size** — inside `with_capacity(…)`, after the `;` of
//!    `vec![…; …]`, or inside `.take(…)` — fires.
//!
//! **Cross-function taint**: a helper that merely *returns* a wire-read
//! length launders the taint past the per-body heuristic — the live
//! pattern is `compso_comm::membership::rank_count`, whose callers must
//! compare against `RANKS_MAX` themselves. Pass 1
//! ([`collect_length_sources`]) finds every function whose signature
//! returns an integer width, whose body reads `.u32()`/`.u64()`, and
//! whose body contains *no* guard marker: its return value is an
//! unclamped wire length. The engine unions these names workspace-wide
//! into [`Context::length_sources`]; pass 2 treats a call to any such
//! function exactly like a direct `.u32()` read when tainting a `let`
//! binding. Same-file sources are folded in even when the rule runs on
//! a single file (fixtures, `check_file`).

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub struct UncheckedLengthPrefix;

const NAME: &str = "unchecked-length-prefix";

impl Rule for UncheckedLengthPrefix {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        // Workspace-wide length sources plus this file's own: the
        // single-file entry points (fixtures, direct check_file) still
        // see intra-file cross-function taint.
        let mut sources = ctx.length_sources.clone();
        sources.extend(collect_length_sources(file));
        for f in &file.fns {
            if f.body.is_empty() || file.in_test(f.body.start) {
                continue;
            }
            // The source function itself returns the raw length by
            // design; the obligation sits on its callers.
            if sources.contains(&f.name) {
                continue;
            }
            let body: Vec<usize> = (0..v.len())
                .filter(|&ci| f.body.contains(&v.tok(ci).start))
                .collect();
            check_body(&v, &body, &sources, out);
        }
    }
}

/// Pass 1 of the cross-function analysis: names of functions in `file`
/// whose **return value is an unclamped wire-read length** — signature
/// returns an integer width (`usize`/`u32`/`u64`, possibly inside
/// `Result<…>`), body calls `.u32()`/`.u64()`, and no guard marker
/// appears anywhere in the body. Callers must treat these like direct
/// wire reads. Test code never contributes sources.
pub fn collect_length_sources(file: &SourceFile) -> Vec<String> {
    let v = View::new(file);
    let mut out = Vec::new();
    for f in &file.fns {
        if f.body.is_empty() || file.in_test(f.kw_start) {
            continue;
        }
        let sig: Vec<usize> = (0..v.len())
            .filter(|&ci| {
                let start = v.tok(ci).start;
                start >= f.kw_start && start < f.body.start
            })
            .collect();
        if !returns_integer(&v, &sig) {
            continue;
        }
        let body: Vec<usize> = (0..v.len())
            .filter(|&ci| f.body.contains(&v.tok(ci).start))
            .collect();
        if reads_wire_len(&v, &body) && !has_guard(&v, &body) {
            out.push(f.name.clone());
        }
    }
    out
}

/// Does the signature's return type (tokens after `->`) mention an
/// integer width a length could travel through?
fn returns_integer(v: &View, sig: &[usize]) -> bool {
    let arrow = sig
        .windows(2)
        .position(|w| v.is_punct(w[0], "-") && v.is_punct(w[1], ">"));
    let Some(at) = arrow else {
        return false;
    };
    sig[at + 2..]
        .iter()
        .any(|&ci| v.kind(ci) == TokenKind::Ident && matches!(v.text(ci), "usize" | "u32" | "u64"))
}

fn check_body(v: &View, body: &[usize], sources: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    // Statements: body token runs split on `;` — except inside `[...]`,
    // so `vec![0u8; n]` stays one statement (brace-depth agnostic
    // otherwise, which is good enough for a taint heuristic).
    let mut stmts: Vec<&[usize]> = Vec::new();
    let mut start = 0;
    let mut brackets = 0i32;
    for (i, &ci) in body.iter().enumerate() {
        if v.is_punct(ci, "[") {
            brackets += 1;
        } else if v.is_punct(ci, "]") {
            brackets -= 1;
        } else if v.is_punct(ci, ";") && brackets == 0 {
            stmts.push(&body[start..i]);
            start = i + 1;
        }
    }
    if start < body.len() {
        stmts.push(&body[start..]);
    }

    let mut tainted: Vec<String> = Vec::new();
    for mut stmt in stmts {
        // Trim block-structure tokens: the body's own `{`, nested block
        // openers (`if ok { let n = ... }`), and closers, so `let` is
        // the statement's first meaningful token when present.
        while let Some((&first, rest)) = stmt.split_first() {
            if v.is_punct(first, "{") || v.is_punct(first, "}") {
                stmt = rest;
            } else {
                break;
            }
        }
        let mentions = |name: &str| {
            stmt.iter()
                .any(|&ci| v.kind(ci) == TokenKind::Ident && v.text(ci) == name)
        };
        let guarded = has_guard(v, stmt);

        // Allocation check first: a statement like `let m = vec![0; n]`
        // must fire on the *old* taint of `n` before `m` bookkeeping.
        if let Some(flag_ci) = alloc_use(v, stmt, &tainted) {
            if !guarded {
                let name = v.text(flag_ci).to_string();
                out.push(v.diag(
                    NAME,
                    flag_ci,
                    format!(
                        "wire-read length `{name}` sizes an allocation without a bound \
                         check; clamp via checked_count / compare against remaining() first"
                    ),
                ));
                tainted.retain(|t| t != &name); // report once per taint
            }
        }

        // Guard statements clear taint for every identifier they mention.
        if guarded {
            tainted.retain(|t| !mentions(t));
        }

        // New taints: `let [mut] X … = … .u32()/.u64() …` without a guard
        // in the same statement. Re-binding clears the old taint either way.
        if let Some(name) = let_binding(v, stmt) {
            tainted.retain(|t| t != &name);
            if (reads_wire_len(v, stmt) || calls_source(v, stmt, sources)) && !guarded {
                tainted.push(name);
            }
        }
    }
}

/// `let [mut] X` at the start of a statement → `Some(X)`.
fn let_binding(v: &View, stmt: &[usize]) -> Option<String> {
    let mut it = stmt.iter().copied();
    let first = it.next()?;
    if !v.is_ident(first, "let") {
        return None;
    }
    let mut next = it.next()?;
    if v.is_ident(next, "mut") {
        next = it.next()?;
    }
    (v.kind(next) == TokenKind::Ident).then(|| v.text(next).to_string())
}

/// Does this statement call `.u32()` or `.u64()` (a wire length read)?
fn reads_wire_len(v: &View, stmt: &[usize]) -> bool {
    stmt.windows(3).any(|w| {
        v.is_punct(w[0], ".")
            && (v.is_ident(w[1], "u32") || v.is_ident(w[1], "u64"))
            && v.is_punct(w[2], "(")
    })
}

/// Does this statement call a known length-source helper (`name(…)`)?
/// Those return unclamped wire lengths and taint like a direct read.
fn calls_source(v: &View, stmt: &[usize], sources: &BTreeSet<String>) -> bool {
    if sources.is_empty() {
        return false;
    }
    stmt.windows(2).any(|w| {
        v.kind(w[0]) == TokenKind::Ident && v.is_punct(w[1], "(") && sources.contains(v.text(w[0]))
    })
}

/// Does this statement contain a bound-check marker?
fn has_guard(v: &View, stmt: &[usize]) -> bool {
    // `==` / `!=` lex as two adjacent Punct tokens.
    let eq_cmp = stmt
        .windows(2)
        .any(|w| (v.is_punct(w[0], "=") || v.is_punct(w[0], "!")) && v.is_punct(w[1], "="));
    eq_cmp
        || stmt.iter().any(|&ci| match v.kind(ci) {
            TokenKind::Punct => {
                let t = v.text(ci);
                t == "<" || t == ">"
            }
            TokenKind::Ident => {
                let t = v.text(ci);
                t == "min"
                    || t == "max"
                    || t.starts_with("MAX")
                    || t.contains("check")
                    || t.contains("ensure")
                    || t.contains("remaining")
                    || t.contains("bound")
                    || t.contains("assert")
            }
            _ => false,
        })
}

/// If this statement uses a tainted identifier as an allocation *size*,
/// return the token index of that identifier.
fn alloc_use(v: &View, stmt: &[usize], tainted: &[String]) -> Option<usize> {
    if tainted.is_empty() {
        return None;
    }
    let is_tainted =
        |ci: usize| v.kind(ci) == TokenKind::Ident && tainted.iter().any(|t| t == v.text(ci));
    for pos in 0..stmt.len() {
        // `with_capacity( … )` and `.take( … )`: tainted ident anywhere
        // in the argument list.
        let callee = v.is_ident(stmt[pos], "with_capacity")
            || (v.is_ident(stmt[pos], "take") && pos > 0 && v.is_punct(stmt[pos - 1], "."));
        if callee && pos + 1 < stmt.len() && v.is_punct(stmt[pos + 1], "(") {
            let mut depth = 0i32;
            for &ci in &stmt[pos + 1..] {
                if v.is_punct(ci, "(") {
                    depth += 1;
                } else if v.is_punct(ci, ")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_tainted(ci) {
                    return Some(ci);
                }
            }
        }
        // `vec![ … ; LEN ]`: tainted ident in the length position only.
        if v.is_ident(stmt[pos], "vec")
            && pos + 2 < stmt.len()
            && v.is_punct(stmt[pos + 1], "!")
            && v.is_punct(stmt[pos + 2], "[")
        {
            let mut depth = 0i32;
            let mut in_len = false;
            for &ci in &stmt[pos + 2..] {
                if v.is_punct(ci, "[") {
                    depth += 1;
                } else if v.is_punct(ci, "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 && v.is_punct(ci, ";") {
                    in_len = true;
                } else if in_len && is_tainted(ci) {
                    return Some(ci);
                }
            }
        }
    }
    None
}
