//! `counter-registry`: every obs counter / span / collective-label name
//! must be registered in `compso_obs::names`.
//!
//! Observability names are string-keyed: `Recorder::incr("kfac/step")`,
//! `recv_labeled(src, "comm/barrier")`, `StepReport` phase tables, and
//! test assertions all meet on literal strings. Before the registry,
//! renaming a counter silently broke the step report and whichever test
//! pinned the old literal. The registry makes membership checkable; this
//! rule makes it checked:
//!
//! 1. Any string literal **shaped like a counter name** — `core/…`,
//!    `comm/…`, `kfac/…`, `ckpt/…`, or `ctrl/…` with lowercase
//!    `[a-z0-9_/]` segments — must be a member of the registry. This
//!    applies to tests too: a test asserting an unregistered name is
//!    drift by definition.
//! 2. Any **literal argument to a name-keyed API** (`incr`, `add`,
//!    `observe`, `span`, `add_time_ns`, `recv_labeled`) must be
//!    registered, whatever its shape — catching typos that dodge the
//!    name pattern entirely.
//!
//! The registry itself is parsed from `crates/obs/src/names.rs` by the
//! engine (`const NAME: &str = "…";` entries), so its definitions
//! trivially satisfy the rule.

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct CounterRegistry;

const NAME: &str = "counter-registry";

/// Obs namespaces whose string shape implies "this is a counter name".
const NAMESPACES: &[&str] = &["core", "comm", "kfac", "ckpt", "ctrl"];

/// Name-keyed APIs whose literal arguments must be registered.
const KEYED_APIS: &[&str] = &[
    "incr",
    "add",
    "observe",
    "span",
    "add_time_ns",
    "recv_labeled",
];

impl Rule for CounterRegistry {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        for ci in 0..v.len() {
            if v.kind(ci) != TokenKind::Str {
                continue;
            }
            let Some(value) = str_value(v.text(ci)) else {
                continue;
            };
            if ctx.registered_names.contains(value) {
                continue;
            }
            if counter_shaped(value) {
                out.push(v.diag(
                    NAME,
                    ci,
                    format!(
                        "counter-shaped literal \"{value}\" is not registered in \
                         compso_obs::names; add it there and use the constant"
                    ),
                ));
            } else if is_keyed_api_arg(&v, ci) && !file.in_test(v.tok(ci).start) {
                out.push(v.diag(
                    NAME,
                    ci,
                    format!(
                        "literal \"{value}\" passed to a name-keyed obs API; \
                         register it in compso_obs::names and use the constant"
                    ),
                ));
            }
        }
    }
}

/// The literal's value, for plain (non-raw) strings without escapes —
/// counter names never need either.
fn str_value(text: &str) -> Option<&str> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.contains('\\')).then_some(inner)
}

/// `namespace/segment(/segment)*` with lowercase snake segments.
fn counter_shaped(s: &str) -> bool {
    let Some((ns, rest)) = s.split_once('/') else {
        return false;
    };
    if !NAMESPACES.contains(&ns) || rest.is_empty() {
        return false;
    }
    rest.split('/').all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Is the string token at `ci` an argument of a name-keyed API call?
/// Matches `. api ( … "lit"` with the literal before the matching `)`.
fn is_keyed_api_arg(v: &View, ci: usize) -> bool {
    // Walk backwards to the opening `(` at depth 0, then check the two
    // tokens before it for `.api` / `api`.
    let mut depth = 0i32;
    let mut k = ci;
    while k > 0 {
        k -= 1;
        if v.is_punct(k, ")") || v.is_punct(k, "]") {
            depth += 1;
        } else if v.is_punct(k, "(") || v.is_punct(k, "[") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && v.is_punct(k, ";") {
            return false;
        }
    }
    if k == 0 || !v.is_punct(k, "(") {
        return false;
    }
    let callee = k.checked_sub(1);
    callee.is_some_and(|c| v.kind(c) == TokenKind::Ident && KEYED_APIS.contains(&v.text(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_detection() {
        assert!(counter_shaped("comm/recv"));
        assert!(counter_shaped("kfac/step/other"));
        assert!(counter_shaped("core/encode_v2"));
        assert!(counter_shaped("ctrl/decisions"));
        assert!(!counter_shaped("kfac/")); // dangling namespace prefix
        assert!(!counter_shaped("global/step")); // not an obs namespace
        assert!(!counter_shaped("comm/Recv")); // uppercase
        assert!(!counter_shaped("comm")); // no slash
        assert!(!counter_shaped("kfac/{idx}")); // format! placeholder
    }
}
