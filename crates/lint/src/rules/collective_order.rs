//! `collective-order`: every rank must issue the same collective
//! sequence, or the group deadlocks.
//!
//! The synchronous K-FAC pipeline (PAPER.md §4) assumes all ranks reach
//! `allreduce`/`allgather`/`barrier` calls in lockstep. A collective —
//! direct, or transitive through a helper — issued under a branch that
//! only *some* ranks take is the deadlock shape: the branching rank
//! blocks in the collective while its peers never enter it. Two
//! variants are flagged in production comm/kfac code:
//!
//! 1. **Conditional collective**: a collective call inside an
//!    `if`/`else if`/`else` chain whose condition mentions a rank/peer
//!    identity (`rank`, `phys_rank`, `peer`, `.rank()`, …).
//! 2. **Early return before a collective**: a rank-conditional branch
//!    containing `return`, while the enclosing function issues a
//!    collective *after* the chain — returning ranks skip it.
//!
//! Point-to-point sends/recvs inside rank branches are fine (that is
//! how collectives are *implemented*); only collective entry points
//! synchronize the whole group. Transitivity comes from the call-graph
//! facts ([`crate::callgraph`]): a helper that reaches a collective is
//! as dangerous as the collective itself.
//!
//! Deliberate single-rank collectives (e.g. a quiesce barrier guarded
//! by a fault-plane check) must carry
//! `lint:allow(collective-order): <why every live rank takes the same
//! branch>`.

use super::{Rule, View, COLLECTIVES};
use crate::callgraph::file_facts;
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub struct CollectiveOrder;

const NAME: &str = "collective-order";

/// Identifiers in an `if` condition that mark it rank-conditional.
const RANK_IDENTS: &[&str] = &[
    "rank",
    "my_rank",
    "phys_rank",
    "virtual_rank",
    "peer",
    "leader",
    "joiner",
    "root_rank",
];

impl Rule for CollectiveOrder {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        let facts = file_facts(file, ctx);
        for f in &file.fns {
            if f.body.is_empty() || file.in_test(f.body.start) {
                continue;
            }
            // The collectives themselves are implemented with
            // rank-conditional point-to-point phases and may legally
            // branch on rank around nested collective entry points
            // (e.g. pipelined_allgather falling back to allgather).
            if COLLECTIVES.contains(&f.name.as_str()) {
                continue;
            }
            let body = v.in_range(&f.body);
            for chain in rank_conditional_chains(&v, &body) {
                let chain_end = chain.end;
                let mut saw_return = false;
                for i in chain.clone() {
                    let ci = body[i];
                    if v.is_ident(ci, "return") {
                        saw_return = true;
                    }
                    // Callee position: `ident (`.
                    if v.kind(ci) != TokenKind::Ident
                        || !body.get(i + 1).is_some_and(|&p| v.is_punct(p, "("))
                    {
                        continue;
                    }
                    let callee = v.text(ci);
                    if COLLECTIVES.contains(&callee) {
                        out.push(v.diag(
                            NAME,
                            ci,
                            format!(
                                "collective `{callee}` issued under a rank-conditional \
                                 branch in `{}`; ranks that skip the branch never enter \
                                 it and the group deadlocks — hoist it, or annotate \
                                 lint:allow({NAME}): <why every live rank branches \
                                 identically>",
                                f.name
                            ),
                        ));
                    } else if facts.collective(callee) {
                        out.push(v.diag(
                            NAME,
                            ci,
                            format!(
                                "`{callee}` transitively issues a collective, and is \
                                 called under a rank-conditional branch in `{}`; hoist \
                                 the call or annotate lint:allow({NAME}): <proof>",
                                f.name
                            ),
                        ));
                    }
                }
                // Early-return shape: a rank-conditional return while the
                // function issues a collective later in the body.
                if saw_return {
                    if let Some(after) = first_collective_after(&v, &body, chain_end, &facts) {
                        let ret = chain
                            .clone()
                            .find(|&i| v.is_ident(body[i], "return"))
                            .expect("saw_return");
                        out.push(v.diag(
                            NAME,
                            body[ret],
                            format!(
                                "rank-conditional early return in `{}` skips the \
                                 collective `{}` issued later in the function; \
                                 returning ranks leave their peers blocked — \
                                 restructure, or annotate lint:allow({NAME}): <proof>",
                                f.name,
                                v.text(body[after]),
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Body-index ranges (into `body`) covering each rank-conditional
/// `if … { } else if … { } else { }` chain: from the first branch body's
/// `{` through the last branch body's `}`. The *whole* chain is
/// rank-conditional if any branch condition in it is.
fn rank_conditional_chains(v: &View, body: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if !v.is_ident(body[i], "if") {
            i += 1;
            continue;
        }
        // One chain: alternating conditions and brace-matched blocks.
        let chain_start_cond = i;
        let mut rankish = false;
        let mut chain_body_start: Option<usize> = None;
        let mut j = i;
        loop {
            // Condition: tokens from after `if` to its block `{` at
            // paren/bracket depth 0.
            let mut depth = 0i32;
            let mut k = j + 1;
            let mut open = None;
            while k < body.len() {
                let ci = body[k];
                if v.is_punct(ci, "(") || v.is_punct(ci, "[") {
                    depth += 1;
                } else if v.is_punct(ci, ")") || v.is_punct(ci, "]") {
                    depth -= 1;
                } else if v.is_punct(ci, "{") && depth == 0 {
                    open = Some(k);
                    break;
                }
                k += 1;
            }
            let Some(open) = open else {
                break;
            };
            rankish |= body[j + 1..open]
                .iter()
                .any(|&ci| v.kind(ci) == TokenKind::Ident && RANK_IDENTS.contains(&v.text(ci)));
            chain_body_start.get_or_insert(open);
            // Match the block.
            let mut brace = 0i32;
            let mut close = open;
            while close < body.len() {
                if v.is_punct(body[close], "{") {
                    brace += 1;
                } else if v.is_punct(body[close], "}") {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                close += 1;
            }
            // `else if` continues the chain; `else { }` ends it.
            if close + 1 < body.len() && v.is_ident(body[close + 1], "else") {
                if close + 2 < body.len() && v.is_ident(body[close + 2], "if") {
                    j = close + 2;
                    continue;
                }
                // Plain else block.
                if close + 2 < body.len() && v.is_punct(body[close + 2], "{") {
                    let mut b = 0i32;
                    let mut e = close + 2;
                    while e < body.len() {
                        if v.is_punct(body[e], "{") {
                            b += 1;
                        } else if v.is_punct(body[e], "}") {
                            b -= 1;
                            if b == 0 {
                                break;
                            }
                        }
                        e += 1;
                    }
                    close = e;
                }
            }
            if rankish {
                if let Some(start) = chain_body_start {
                    out.push(start..close.min(body.len() - 1) + 1);
                }
                // The whole chain is covered; skip past it (nested ifs
                // inside are already in the range).
                i = close.max(chain_start_cond) + 1;
            } else {
                // Not rank-conditional: step *into* the first block so
                // nested rank-conditional ifs still get scanned.
                i = chain_body_start.unwrap_or(close).max(chain_start_cond) + 1;
            }
            break;
        }
        if i <= chain_start_cond {
            i = chain_start_cond + 1;
        }
    }
    out
}

/// First body index `> from` holding a collective call (direct or via
/// facts), if any.
fn first_collective_after(
    v: &View,
    body: &[usize],
    from: usize,
    facts: &crate::callgraph::Facts<'_>,
) -> Option<usize> {
    for i in from..body.len().saturating_sub(1) {
        let ci = body[i];
        if v.kind(ci) == TokenKind::Ident && v.is_punct(body[i + 1], "(") {
            let callee = v.text(ci);
            if COLLECTIVES.contains(&callee) || facts.collective(callee) {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        out.retain(|d| d.rule == NAME);
        out
    }

    #[test]
    fn conditional_collective_fires() {
        let out = diags(
            "crates/kfac/src/x.rs",
            "fn sync(c: &mut C) -> Result<(), E> {\n\
                 if c.rank == 0 {\n        c.barrier()?;\n    }\n    Ok(())\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`barrier`"));
    }

    #[test]
    fn transitive_collective_fires() {
        let out = diags(
            "crates/kfac/src/x.rs",
            "fn helper(c: &mut C) -> Result<(), E> { c.allreduce_sum(&mut []) }\n\
             fn sync(c: &mut C, rank: usize) -> Result<(), E> {\n\
                 if rank == 0 { helper(c)?; }\n    Ok(())\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`helper`"));
    }

    #[test]
    fn early_return_before_collective_fires() {
        let out = diags(
            "crates/comm/src/x.rs",
            "fn step(c: &mut C, rank: usize) -> Result<(), E> {\n\
                 if rank != 0 {\n        return Ok(());\n    }\n\
                 c.barrier()?;\n    Ok(())\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("early return"));
    }

    #[test]
    fn unconditional_and_non_rank_branches_are_clean() {
        let out = diags(
            "crates/comm/src/x.rs",
            "fn sync(c: &mut C) -> Result<(), E> {\n\
                 c.barrier()?;\n\
                 if c.config.enabled {\n        c.allreduce_sum(&mut [])?;\n    }\n\
                 Ok(())\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn point_to_point_sends_in_rank_branches_are_fine() {
        let out = diags(
            "crates/comm/src/x.rs",
            "fn bcast(c: &mut C, rank: usize) -> Result<(), E> {\n\
                 if rank == 0 { c.send(1, payload)?; } else { c.recv_from(0)?; }\n\
                 Ok(())\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
