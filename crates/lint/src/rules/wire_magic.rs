//! `wire-magic-registry`: every wire-format magic byte must come from
//! the central `compso_core::wire::magic` module.
//!
//! The workspace reserves the `0xC0..=0xCF` byte range for wire magics
//! (seven are assigned today: stream v1/v2, group, pargroup, ckpt
//! tensors/manifest, CRC frame). A bare two-hex-digit literal in that
//! range appearing in production code is either a duplicated magic
//! (drift waiting to happen) or a new format dodging the uniqueness
//! check — both are exactly what the central registry exists to prevent.
//!
//! The only place such literals may appear is the registry itself: the
//! `mod magic { … }` block inside `crates/core/src/wire.rs`. Test code
//! (corruption tests forge bad magics on purpose) is out of scope.

use super::{Rule, View};
use crate::engine::{Context, Diagnostic};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::ops::Range;

pub struct WireMagicRegistry;

const NAME: &str = "wire-magic-registry";

impl Rule for WireMagicRegistry {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        let registry = magic_module_range(&v);
        for ci in 0..v.len() {
            if v.kind(ci) != TokenKind::Int {
                continue;
            }
            let t = v.tok(ci);
            if file.in_test(t.start) {
                continue;
            }
            if let Some(r) = &registry {
                if r.contains(&t.start) {
                    continue;
                }
            }
            if let Some(value) = wire_magic_value(v.text(ci)) {
                out.push(v.diag(
                    NAME,
                    ci,
                    format!(
                        "bare wire magic literal 0x{value:02X} in production code; \
                         use the named constant from compso_core::wire::magic"
                    ),
                ));
            }
        }
    }
}

/// Parse a literal like `0xC5` / `0xC5u8` / `0xC_5`; `Some(value)` when
/// it is a two-hex-digit literal in the reserved `0xC0..=0xCF` range.
/// Wider literals (`0xCBF4_3926` CRC polynomials, …) never match.
/// Shared with the engine's magic-registry parser and the `--fix`
/// rewriter.
pub(crate) fn wire_magic_value(text: &str) -> Option<u8> {
    let rest = text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0X"))?;
    let mut digits = String::new();
    for c in rest.chars() {
        if c == '_' {
            continue;
        }
        if c.is_ascii_hexdigit() {
            digits.push(c);
        } else {
            break; // type suffix (u8, usize, …)
        }
    }
    if digits.len() != 2 {
        return None;
    }
    let value = u8::from_str_radix(&digits, 16).ok()?;
    (0xC0..=0xCF).contains(&value).then_some(value)
}

/// Byte range of a `mod magic { … }` block in this file, if any — the
/// one sanctioned home for bare magic literals.
fn magic_module_range(v: &View) -> Option<Range<usize>> {
    for ci in 0..v.len().saturating_sub(2) {
        if v.is_ident(ci, "mod") && v.is_ident(ci + 1, "magic") && v.is_punct(ci + 2, "{") {
            let start = v.tok(ci).start;
            let mut depth = 0i32;
            for k in (ci + 2)..v.len() {
                if v.is_punct(k, "{") {
                    depth += 1;
                } else if v.is_punct(k, "}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some(start..v.tok(k).end);
                    }
                }
            }
            return Some(start..v.file.src.len());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_literal_shapes() {
        assert_eq!(wire_magic_value("0xC5"), Some(0xC5));
        assert_eq!(wire_magic_value("0xC5u8"), Some(0xC5));
        assert_eq!(wire_magic_value("0xCF"), Some(0xCF));
        assert_eq!(wire_magic_value("0xBF"), None); // outside the range
        assert_eq!(wire_magic_value("0xCBF4_3926"), None); // CRC constant
        assert_eq!(wire_magic_value("0xC5C5"), None); // too wide
        assert_eq!(wire_magic_value("197"), None); // decimal never matches
    }
}
