//! `deterministic-state`: no impurity source may be reachable from a
//! determinism-critical function.
//!
//! The controller (`Controller::observe`/`decide`), the wire codecs,
//! checkpoint snapshot/restore, and `DistKfac::step*` must be pure
//! functions of (config, seed, inputs): every rank replays the same
//! decisions and bytes *without consensus* — that is what the 1/2/4-rank
//! bit-identity tests pin after the fact, and what this rule proves
//! statically. An `Instant::now()` in a helper three calls below
//! `observe` breaks replicas just as surely as one in `observe` itself.
//!
//! The rule fires **at the impurity site** (the clock read, the RNG
//! call, the HashMap iteration), naming the critical root whose call
//! cone reaches it — so a legitimate site can carry an inline
//! `lint:allow(deterministic-state): reason` right where the claim is
//! made. Reachability comes from the workspace call graph
//! ([`crate::callgraph`]); transport deadline/backoff functions on the
//! audited [`super::DETERMINISM_ALLOWLIST`] are exempt and cut the cone
//! for everything behind them.

use super::{determinism_allow, Rule, View};
use crate::callgraph::{file_facts, impurity_name, impurity_sites};
use crate::engine::{Context, Diagnostic};
use crate::source::SourceFile;

pub struct DeterministicState;

const NAME: &str = "deterministic-state";

impl Rule for DeterministicState {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let v = View::new(file);
        let sites = impurity_sites(&v);
        if sites.is_empty() {
            return;
        }
        let facts = file_facts(file, ctx);
        for site in sites {
            let at = v.tok(site.ci).start;
            let Some(f) = file.enclosing_fn(at) else {
                continue; // impurity in const/static init: out of scope
            };
            if determinism_allow(&f.name).is_some() {
                continue;
            }
            let roots = facts.get(&f.name).roots;
            let Some(root) = roots.iter().next() else {
                continue; // not reachable from any critical root
            };
            out.push(v.diag(
                NAME,
                site.ci,
                format!(
                    "{} in `{}`, which is reachable from determinism-critical \
                     `{root}`{}; replicas must compute identical state — hoist the \
                     impurity out of the cone or annotate lint:allow({NAME}): <why \
                     this cannot diverge replicas>",
                    impurity_name(site.kind),
                    f.name,
                    if roots.len() > 1 {
                        format!(" (+{} more roots)", roots.len() - 1)
                    } else {
                        String::new()
                    },
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src.into());
        let ctx = Context::with_names(Vec::new());
        let mut out = Vec::new();
        check_file(&f, &ctx, &mut out);
        out.retain(|d| d.rule == NAME);
        out
    }

    #[test]
    fn clock_in_root_cone_fires_at_the_site() {
        let out = diags(
            "crates/ctrl/src/controller.rs",
            "pub fn observe(&mut self, s: &Signals) -> Decision {\n\
                 let jitter = helper();\n    pick(s, jitter)\n}\n\
             fn helper() -> u64 {\n\
                 Instant::now().elapsed().as_nanos() as u64\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 6, "fires at the clock read, not the root");
        assert!(out[0].message.contains("`observe`"));
        assert!(out[0].message.contains("wall-clock read"));
    }

    #[test]
    fn impurity_outside_any_cone_is_clean() {
        let out = diags(
            "crates/bench/src/lib.rs",
            "pub fn measure() -> u64 {\n\
                 Instant::now().elapsed().as_nanos() as u64\n}\n",
        );
        assert!(out.is_empty(), "bench timing is no one's root: {out:?}");
    }

    #[test]
    fn allowlisted_fn_is_exempt() {
        let out = diags(
            "crates/comm/src/group.rs",
            "pub fn barrier(&mut self) -> Result<(), CommError> {\n\
                 let deadline = Instant::now() + self.config.recv_timeout;\n\
                 self.wait(deadline)\n}\n\
             pub fn restore_coord(&mut self) -> Result<(), CommError> { self.barrier() }\n",
        );
        assert!(out.is_empty(), "audited transport deadline: {out:?}");
    }
}
