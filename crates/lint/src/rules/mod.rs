//! The rule catalogue, as **declarative tables**.
//!
//! Every rule implements [`Rule`] over a [`SourceFile`] token stream and
//! appends [`Diagnostic`]s. Rules never see suppressed lines — the
//! engine filters `lint:allow` afterwards — and they are expected to be
//! *sound over the token stream*: literals and comments are opaque
//! tokens, so a magic byte in a doc comment or a counter name inside a
//! test string can never fire by accident.
//!
//! v3 moved all scoping out of the rule bodies and into data:
//!
//! - [`RULES`] — one [`RuleSpec`] per rule: severity, include/exclude
//!   path prefixes, constructor. The engine consults `applies_to`
//!   before running a rule on a file, so rules no longer hard-code
//!   their own path checks or self-exclusion carve-outs.
//! - [`GLOBAL_EXCLUDE`] — paths no rule ever runs on (the analyzer
//!   itself: its tables spell out the byte ranges and name shapes they
//!   hunt for, and its fixtures contain deliberate violations). The
//!   lexer tiling property still covers these files.
//! - [`COLLECTIVES`], [`CRITICAL_ROOTS`], [`DETERMINISM_ALLOWLIST`] —
//!   the workspace-contract vocabulary the call-graph rules share (see
//!   [`crate::callgraph`]).

use crate::engine::{Context, Diagnostic, SUPPRESSION_HYGIENE};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

mod collective_order;
mod counter_registry;
mod deterministic_state;
mod float_reduction;
mod hashmap_iter;
pub mod length_prefix;
mod no_unwrap;
mod swallowed;
mod wire_magic;

pub use collective_order::CollectiveOrder;
pub use counter_registry::CounterRegistry;
pub use deterministic_state::DeterministicState;
pub use float_reduction::FloatReductionOrder;
pub use hashmap_iter::NondeterministicWireIteration;
pub use length_prefix::UncheckedLengthPrefix;
pub use no_unwrap::NoUnwrapOnCommPath;
pub use swallowed::SwallowedCommError;
pub use wire_magic::WireMagicRegistry;

pub(crate) use hashmap_iter::{hashmap_idents, in_for_header, is_iter_call};
pub(crate) use swallowed::let_underscore_stmts;
pub(crate) use wire_magic::wire_magic_value;

/// A single analysis rule.
pub trait Rule {
    fn name(&self) -> &'static str;
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// Finding severity. `--deny` exit status is driven by `Deny` findings;
/// `Warn` findings print (and serialize) but never fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Deny,
    Warn,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One row of the rule table: everything the engine needs to decide
/// *whether* and *how seriously* to run a rule on a file, separated
/// from the rule's token-level logic.
pub struct RuleSpec {
    pub name: &'static str,
    pub severity: Severity,
    /// Path prefixes the rule is confined to; empty = whole workspace.
    pub include: &'static [&'static str],
    /// Path prefixes excluded on top of [`GLOBAL_EXCLUDE`].
    pub exclude: &'static [&'static str],
    make: fn() -> Box<dyn Rule>,
}

impl RuleSpec {
    /// Does this rule run on `path` (workspace-relative, `/`-separated)?
    pub fn applies_to(&self, path: &str) -> bool {
        if GLOBAL_EXCLUDE.iter().any(|p| path.starts_with(p)) {
            return false;
        }
        if self.exclude.iter().any(|p| path.starts_with(p)) {
            return false;
        }
        self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p))
    }

    pub fn rule(&self) -> Box<dyn Rule> {
        (self.make)()
    }
}

/// Paths no rule ever runs on: the analyzer's own sources and fixtures.
pub const GLOBAL_EXCLUDE: &[&str] = &["crates/lint/"];

/// The rule table, in catalogue order (DESIGN.md §11.2).
pub const RULES: &[RuleSpec] = &[
    RuleSpec {
        name: "wire-magic-registry",
        severity: Severity::Deny,
        include: &[],
        exclude: &[],
        make: || Box::new(WireMagicRegistry),
    },
    RuleSpec {
        name: "no-unwrap-on-comm-path",
        severity: Severity::Deny,
        // The comm crate *is* the fallible path; kfac is in scope only
        // inside Result-returning fns (a behavioral refinement the rule
        // keeps — it is not a path scope).
        include: &["crates/comm/src/", "crates/kfac/src/"],
        exclude: &[],
        make: || Box::new(NoUnwrapOnCommPath),
    },
    RuleSpec {
        name: "unchecked-length-prefix",
        severity: Severity::Deny,
        include: &[],
        exclude: &[],
        make: || Box::new(UncheckedLengthPrefix),
    },
    RuleSpec {
        name: "counter-registry",
        severity: Severity::Deny,
        include: &[],
        exclude: &[],
        make: || Box::new(CounterRegistry),
    },
    RuleSpec {
        name: "nondeterministic-wire-iteration",
        severity: Severity::Deny,
        include: &[],
        exclude: &[],
        make: || Box::new(NondeterministicWireIteration),
    },
    RuleSpec {
        name: "collective-order",
        severity: Severity::Deny,
        // Deadlocks need a group: only comm/kfac issue collectives.
        include: &["crates/comm/src/", "crates/kfac/src/"],
        exclude: &[],
        make: || Box::new(CollectiveOrder),
    },
    RuleSpec {
        name: "deterministic-state",
        severity: Severity::Deny,
        include: &[],
        exclude: &[],
        make: || Box::new(DeterministicState),
    },
    RuleSpec {
        name: "float-reduction-order",
        severity: Severity::Deny,
        include: &[],
        // The sanctioned scalar oracles: fixed-order reference
        // reductions every parallel kernel is pinned against.
        exclude: &["crates/tensor/src/reduce.rs"],
        make: || Box::new(FloatReductionOrder),
    },
    RuleSpec {
        name: "swallowed-comm-error",
        severity: Severity::Deny,
        include: &["crates/comm/src/", "crates/kfac/src/"],
        exclude: &[],
        make: || Box::new(SwallowedCommError),
    },
];

/// Rule names valid in `lint:allow(...)` (includes the hygiene rule).
/// Pinned equal to the table by `rule_names_match_table`.
pub const RULE_NAMES: &[&str] = &[
    "wire-magic-registry",
    "no-unwrap-on-comm-path",
    "unchecked-length-prefix",
    "counter-registry",
    "nondeterministic-wire-iteration",
    "collective-order",
    "deterministic-state",
    "float-reduction-order",
    "swallowed-comm-error",
    SUPPRESSION_HYGIENE,
];

/// Severity of a rule name (hygiene findings always deny).
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.name == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Deny)
}

/// The workspace's collective-call vocabulary: a call to any of these
/// names is a synchronization point every rank must reach in the same
/// order (`crates/comm/src/collectives.rs` + `CommGroup`).
pub const COLLECTIVES: &[&str] = &[
    "allreduce_sum",
    "allreduce_mean",
    "reduce_scatter_sum",
    "allgather",
    "allgather_var",
    "allgather_var_quiet",
    "pipelined_allgather",
    "compressed_allreduce_mean",
    "broadcast",
    "barrier",
];

/// A determinism-critical root: replicas must compute bit-identical
/// state through this function, so no impurity source may be reachable
/// from it (outside the audited allowlist).
pub struct CriticalRoot {
    pub path_prefix: &'static str,
    pub fn_name: &'static str,
    /// `fn_name` is a prefix match (`encode*`) instead of exact.
    pub prefix: bool,
}

/// The determinism-critical roots (ISSUE/DESIGN.md §11.3): controller
/// decisions, wire codecs, checkpoint snapshot/restore, and the
/// distributed step itself. Matching is `(defining path, fn name)`.
pub const CRITICAL_ROOTS: &[CriticalRoot] = &[
    // Controller: every rank replays identical decisions without
    // consensus.
    CriticalRoot {
        path_prefix: "crates/ctrl/src/",
        fn_name: "observe",
        prefix: false,
    },
    CriticalRoot {
        path_prefix: "crates/ctrl/src/",
        fn_name: "decide",
        prefix: false,
    },
    // Wire codecs: byte streams must be pure functions of their inputs.
    CriticalRoot {
        path_prefix: "crates/core/src/",
        fn_name: "encode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/core/src/",
        fn_name: "decode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/comm/src/",
        fn_name: "encode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/comm/src/",
        fn_name: "decode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/ckpt/src/",
        fn_name: "encode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/ckpt/src/",
        fn_name: "decode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/kfac/src/",
        fn_name: "encode",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/kfac/src/",
        fn_name: "decode",
        prefix: true,
    },
    // Checkpoints: snapshot bytes and restored state must be replayable.
    CriticalRoot {
        path_prefix: "crates/ckpt/src/",
        fn_name: "snapshot",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/ckpt/src/",
        fn_name: "restore",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/kfac/src/",
        fn_name: "snapshot",
        prefix: true,
    },
    CriticalRoot {
        path_prefix: "crates/kfac/src/",
        fn_name: "restore",
        prefix: true,
    },
    // DistKfac::step / step_elastic: the whole training step is pinned
    // bit-identical at 1/2/4 ranks.
    CriticalRoot {
        path_prefix: "crates/kfac/src/",
        fn_name: "step",
        prefix: true,
    },
];

/// Does `(path, fn_name)` match a critical root?
pub fn is_critical_root(path: &str, fn_name: &str) -> bool {
    CRITICAL_ROOTS.iter().any(|r| {
        path.starts_with(r.path_prefix)
            && if r.prefix {
                fn_name.starts_with(r.fn_name)
            } else {
                fn_name == r.fn_name
            }
    })
}

/// Audited allowlist for `deterministic-state`: functions where
/// wall-clock reads are *legitimate* — ARQ retransmit deadlines, NACK
/// backoff, recv timeouts. Their timing affects *when* bytes move,
/// never *which* bytes move, so replicas stay bit-identical. The
/// call-graph solver pins their impurity to zero and root cones stop at
/// them: an entry here audits the entire subtree behind the function.
pub const DETERMINISM_ALLOWLIST: &[(&str, &str)] = &[
    (
        "send_to_phys",
        "ARQ flight timestamping for retransmit deadlines; payload bytes are clock-independent",
    ),
    (
        "wire_delay",
        "bandwidth-delay pacing of the modeled wire; delays delivery, never alters bytes",
    ),
    (
        "transmit",
        "ARQ retransmit timestamping (sent_at bookkeeping)",
    ),
    (
        "recv_arq_inner",
        "ARQ receive loop: NACK backoff and recv_timeout deadlines gate retries, not payloads",
    ),
    (
        "barrier",
        "barrier recv_timeout deadline; completion is rank-count based, not time based",
    ),
    (
        "wait_barrier",
        "barrier deadline bookkeeping under the caller-provided Instant",
    ),
    (
        "send_raw_frame",
        "raw membership frame ARQ timestamping",
    ),
    (
        "recv_raw_membership",
        "membership frame recv deadline; a timeout surfaces as CommError, not divergent state",
    ),
    (
        "span",
        "wall-time observability span; the elapsed duration lands in timer counters and never feeds the value path",
    ),
];

/// Allowlist lookup: `Some(audit reason)` when `fn_name` is covered.
pub fn determinism_allow(fn_name: &str) -> Option<&'static str> {
    DETERMINISM_ALLOWLIST
        .iter()
        .find(|(n, _)| *n == fn_name)
        .map(|(_, reason)| *reason)
}

/// A non-trivia view over a file's tokens, shared by the rules.
pub struct View<'a> {
    pub file: &'a SourceFile,
    pub code: Vec<usize>,
}

impl<'a> View<'a> {
    pub fn new(file: &'a SourceFile) -> Self {
        View {
            file,
            code: file.code_tokens(),
        }
    }

    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    pub fn tok(&self, ci: usize) -> &Token {
        &self.file.tokens[self.code[ci]]
    }

    pub fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(&self.file.src)
    }

    pub fn kind(&self, ci: usize) -> TokenKind {
        self.tok(ci).kind
    }

    /// Is the non-trivia token at `ci` exactly `Punct(p)`?
    pub fn is_punct(&self, ci: usize, p: &str) -> bool {
        ci < self.len() && self.kind(ci) == TokenKind::Punct && self.text(ci) == p
    }

    /// Is the non-trivia token at `ci` exactly `Ident(name)`?
    pub fn is_ident(&self, ci: usize, name: &str) -> bool {
        ci < self.len() && self.kind(ci) == TokenKind::Ident && self.text(ci) == name
    }

    /// Build a diagnostic pointing at token `ci`.
    pub fn diag(&self, rule: &'static str, ci: usize, message: String) -> Diagnostic {
        let (line, col) = self.file.line_col(self.tok(ci).start);
        Diagnostic {
            rule,
            path: self.file.path.clone(),
            line,
            col,
            message,
        }
    }

    /// Code-token indices whose span starts inside `range`.
    pub fn in_range(&self, range: &std::ops::Range<usize>) -> Vec<usize> {
        (0..self.len())
            .filter(|&ci| range.contains(&self.tok(ci).start))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_match_table() {
        let mut from_table: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        from_table.push(SUPPRESSION_HYGIENE);
        assert_eq!(RULE_NAMES, from_table.as_slice());
        for spec in RULES {
            assert_eq!(spec.rule().name(), spec.name, "constructor/name drift");
        }
    }

    #[test]
    fn scoping_comes_from_the_table() {
        let spec = |n: &str| RULES.iter().find(|r| r.name == n).unwrap();
        // The analyzer itself is globally excluded.
        for r in RULES {
            assert!(!r.applies_to("crates/lint/src/engine.rs"));
            assert!(!r.applies_to("crates/lint/fixtures/wire-magic-registry/fires.rs"));
        }
        // Path-confined rules.
        assert!(spec("no-unwrap-on-comm-path").applies_to("crates/comm/src/group.rs"));
        assert!(!spec("no-unwrap-on-comm-path").applies_to("crates/tensor/src/lib.rs"));
        assert!(spec("collective-order").applies_to("crates/kfac/src/distributed.rs"));
        assert!(!spec("collective-order").applies_to("crates/ctrl/src/controller.rs"));
        // The oracle module is carved out of float-reduction-order only.
        assert!(!spec("float-reduction-order").applies_to("crates/tensor/src/reduce.rs"));
        assert!(spec("float-reduction-order").applies_to("crates/tensor/src/dense.rs"));
        assert!(spec("deterministic-state").applies_to("crates/tensor/src/reduce.rs"));
    }

    #[test]
    fn critical_root_matching() {
        assert!(is_critical_root("crates/ctrl/src/controller.rs", "observe"));
        assert!(!is_critical_root("crates/obs/src/recorder.rs", "observe"));
        assert!(is_critical_root(
            "crates/kfac/src/distributed.rs",
            "step_elastic"
        ));
        assert!(is_critical_root("crates/ckpt/src/lib.rs", "restore_local"));
        assert!(is_critical_root("crates/comm/src/wire.rs", "encode_view"));
        assert!(!is_critical_root(
            "crates/kfac/src/distributed.rs",
            "helper"
        ));
    }

    #[test]
    fn allowlist_is_audited() {
        for (name, reason) in DETERMINISM_ALLOWLIST {
            assert!(
                !reason.is_empty(),
                "allowlist entry `{name}` needs a reason"
            );
        }
        assert!(determinism_allow("recv_arq_inner").is_some());
        assert!(determinism_allow("observe").is_none());
    }
}
