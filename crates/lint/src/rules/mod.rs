//! The rule catalogue.
//!
//! Every rule implements [`Rule`] over a [`SourceFile`] token stream and
//! appends [`Diagnostic`]s. Rules never see suppressed lines — the
//! engine filters `lint:allow` afterwards — and they are expected to be
//! *sound over the token stream*: literals and comments are opaque
//! tokens, so a magic byte in a doc comment or a counter name inside a
//! test string can never fire by accident.
//!
//! Scope note: `crates/lint/` itself is excluded from rule runs (see the
//! driver). The rule tables below necessarily spell out the byte ranges
//! and name shapes they hunt for, so the analyzer cannot soundly lint
//! its own source; its fixtures hold deliberate violations by design.

use crate::engine::{Context, Diagnostic, SUPPRESSION_HYGIENE};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

mod counter_registry;
mod hashmap_iter;
pub mod length_prefix;
mod no_unwrap;
mod wire_magic;

pub use counter_registry::CounterRegistry;
pub use hashmap_iter::NondeterministicWireIteration;
pub use length_prefix::UncheckedLengthPrefix;
pub use no_unwrap::NoUnwrapOnCommPath;
pub use wire_magic::WireMagicRegistry;

/// A single analysis rule.
pub trait Rule {
    fn name(&self) -> &'static str;
    fn check(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// Every rule, in catalogue order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WireMagicRegistry),
        Box::new(NoUnwrapOnCommPath),
        Box::new(UncheckedLengthPrefix),
        Box::new(CounterRegistry),
        Box::new(NondeterministicWireIteration),
    ]
}

/// Rule names valid in `lint:allow(...)` (includes the hygiene rule).
pub const RULE_NAMES: &[&str] = &[
    "wire-magic-registry",
    "no-unwrap-on-comm-path",
    "unchecked-length-prefix",
    "counter-registry",
    "nondeterministic-wire-iteration",
    SUPPRESSION_HYGIENE,
];

/// A non-trivia view over a file's tokens, shared by the rules.
pub(crate) struct View<'a> {
    pub file: &'a SourceFile,
    pub code: Vec<usize>,
}

impl<'a> View<'a> {
    pub fn new(file: &'a SourceFile) -> Self {
        View {
            file,
            code: file.code_tokens(),
        }
    }

    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn tok(&self, ci: usize) -> &Token {
        &self.file.tokens[self.code[ci]]
    }

    pub fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(&self.file.src)
    }

    pub fn kind(&self, ci: usize) -> TokenKind {
        self.tok(ci).kind
    }

    /// Is the non-trivia token at `ci` exactly `Punct(p)`?
    pub fn is_punct(&self, ci: usize, p: &str) -> bool {
        ci < self.len() && self.kind(ci) == TokenKind::Punct && self.text(ci) == p
    }

    /// Is the non-trivia token at `ci` exactly `Ident(name)`?
    pub fn is_ident(&self, ci: usize, name: &str) -> bool {
        ci < self.len() && self.kind(ci) == TokenKind::Ident && self.text(ci) == name
    }

    /// Build a diagnostic pointing at token `ci`.
    pub fn diag(&self, rule: &'static str, ci: usize, message: String) -> Diagnostic {
        let (line, col) = self.file.line_col(self.tok(ci).start);
        Diagnostic {
            rule,
            path: self.file.path.clone(),
            line,
            col,
            message,
        }
    }
}
