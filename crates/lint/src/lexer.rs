//! A small, honest Rust lexer.
//!
//! The analyzer cannot use `syn` (offline workspace, std only), so every
//! rule is built on this hand-rolled token stream instead of a full AST.
//! The lexer's contract is deliberately narrow and testable:
//!
//! 1. **Spans tile the file.** Every byte of the input belongs to exactly
//!    one token: `tokens[0].start == 0`, `tokens[i].end ==
//!    tokens[i+1].start`, and `tokens.last().end == src.len()`. A
//!    property test in `tests/tiling.rs` asserts this over every source
//!    file in the workspace (and over random prefixes of them).
//! 2. **Comments and literals are opaque.** A `0xC5` inside a string or a
//!    doc comment never reaches a rule as an `Int` token, which is what
//!    makes the lexical rules sound.
//! 3. **Malformed input never panics.** Unterminated strings/comments
//!    are consumed to end-of-file as a single token; the lexer is total.
//!
//! It understands the parts of the language that matter for those
//! guarantees: line and (nested) block comments, string / raw-string /
//! byte-string / raw-byte-string literals, char and byte literals, the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`), raw identifiers
//! (`r#fn`), and numeric literals with underscores, exponents, and type
//! suffixes. Everything else is an identifier or a one-byte `Punct`.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A maximal run of whitespace.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nesting-aware; unterminated runs to end of file.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Integer literal (any base, underscores and suffix included).
    Int,
    /// Float literal (fraction and/or exponent, suffix included).
    Float,
    /// `"…"` string literal.
    Str,
    /// `r"…"` / `r#"…"#` raw string literal.
    RawStr,
    /// `b"…"` byte string literal.
    ByteStr,
    /// `br"…"` / `br#"…"#` raw byte string literal.
    RawByteStr,
    /// `'x'` char literal (escapes included).
    Char,
    /// `b'x'` byte literal.
    Byte,
    /// A single punctuation byte (`.`, `(`, `::` is two tokens, …).
    Punct,
}

/// One token: a [`TokenKind`] plus its byte span `start..end` in the
/// source. Spans are always non-empty and always tile the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the same string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for trivia (whitespace and comments) that rules skip over.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into a token stream whose spans exactly tile the input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor) -> TokenKind {
    let c = match cur.peek() {
        Some(c) => c,
        None => return TokenKind::Punct, // unreachable: caller checks pos < len
    };
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokenKind::Whitespace;
    }
    if c == '/' {
        if cur.starts_with("//") {
            cur.eat_while(|c| c != '\n');
            return TokenKind::LineComment;
        }
        if cur.starts_with("/*") {
            return block_comment(cur);
        }
        cur.bump();
        return TokenKind::Punct;
    }
    if c == '"' {
        return string(cur, TokenKind::Str);
    }
    if c == '\'' {
        return lifetime_or_char(cur);
    }
    if c == 'r' {
        if let Some(kind) = raw_string_or_raw_ident(cur, TokenKind::RawStr) {
            return kind;
        }
        // Fall through: plain identifier starting with `r`.
    }
    if c == 'b' {
        if let Some(kind) = byte_prefixed(cur) {
            return kind;
        }
        // Fall through: plain identifier starting with `b`.
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return number(cur);
    }
    cur.bump();
    TokenKind::Punct
}

/// `/* … */` with nesting; consumes to end of file when unterminated.
fn block_comment(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else if cur.bump().is_none() {
            break; // unterminated
        }
    }
    TokenKind::BlockComment
}

/// `"…"` with `\"` / `\\` escapes; consumes to end of file when
/// unterminated. `kind` distinguishes `Str` from `ByteStr`.
fn string(cur: &mut Cursor, kind: TokenKind) -> TokenKind {
    cur.bump(); // opening '"'
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // whatever is escaped, including '"' and '\\'
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
    kind
}

/// `r"…"`, `r#"…"#`, or a raw identifier `r#ident`. Returns `None` when
/// the `r` begins a plain identifier (caller falls through). `raw_kind`
/// distinguishes `RawStr` (called at `r`) from `RawByteStr` (at `br`).
fn raw_string_or_raw_ident(cur: &mut Cursor, raw_kind: TokenKind) -> Option<TokenKind> {
    // Count hashes after the prefix char without consuming anything yet.
    let mut n = 1; // chars after the leading 'r'
    let mut hashes = 0usize;
    while cur.peek_at(n) == Some('#') {
        hashes += 1;
        n += 1;
    }
    match cur.peek_at(n) {
        Some('"') => {
            // Raw string: consume r, hashes, quote, then scan for `"###`.
            for _ in 0..=n {
                cur.bump();
            }
            let close: String = std::iter::once('"')
                .chain("#".repeat(hashes).chars())
                .collect();
            while cur.pos < cur.src.len() && !cur.starts_with(&close) {
                cur.bump();
            }
            for _ in 0..close.len().min(cur.src.len() - cur.pos) {
                cur.bump();
            }
            Some(raw_kind)
        }
        Some(c) if hashes == 1 && is_ident_start(c) && raw_kind == TokenKind::RawStr => {
            // Raw identifier r#ident.
            cur.bump(); // r
            cur.bump(); // #
            cur.eat_while(is_ident_continue);
            Some(TokenKind::Ident)
        }
        _ => None,
    }
}

/// `b"…"`, `br"…"`, `b'…'`, or `None` when `b` starts a plain identifier.
fn byte_prefixed(cur: &mut Cursor) -> Option<TokenKind> {
    match cur.peek_at(1) {
        Some('"') => {
            cur.bump(); // b
            Some(string(cur, TokenKind::ByteStr))
        }
        Some('\'') => {
            cur.bump(); // b
            cur.bump(); // '
            match cur.bump() {
                Some('\\') => {
                    cur.bump();
                }
                Some('\'') => return Some(TokenKind::Byte), // b'' (malformed, but total)
                _ => {}
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Some(TokenKind::Byte)
        }
        Some('r') => {
            // Maybe br"…" / br#"…"#: delegate with the cursor advanced past b.
            let saved = cur.pos;
            cur.bump(); // b
            match raw_string_or_raw_ident(cur, TokenKind::RawByteStr) {
                Some(TokenKind::RawByteStr) => Some(TokenKind::RawByteStr),
                _ => {
                    cur.pos = saved;
                    None
                }
            }
        }
        _ => None,
    }
}

/// Resolve the `'a` (lifetime) vs `'a'` (char literal) ambiguity.
///
/// After the opening quote: a backslash or a non-identifier char means a
/// char literal; an identifier run means a lifetime *unless* it is a
/// single char immediately closed by another quote.
fn lifetime_or_char(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F600}', …
            cur.bump(); // backslash
            cur.bump(); // escaped char (or 'u' of \u{…})
            cur.eat_while(|c| c != '\'' && c != '\n');
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` is malformed; consume both quotes as one token.
            cur.bump();
            TokenKind::Char
        }
        Some(_) => {
            // Non-identifier char literal: ' ', '+', '→', …
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct, // lone trailing quote
    }
}

/// Integer or float literal, including base prefixes, underscores,
/// exponents, and type suffixes (`0xC5u8`, `1_000`, `2.5e-3f32`).
fn number(cur: &mut Cursor) -> TokenKind {
    if cur.starts_with("0x") || cur.starts_with("0X") {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
        cur.eat_while(is_ident_continue); // suffix (u8, usize, …)
        return TokenKind::Int;
    }
    if cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_'); // digits + suffix
        return TokenKind::Int;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    let mut float = false;
    // Fraction: only when a digit follows the dot, so `1..2` lexes as
    // Int Punct Punct Int and `1.max(2)` as Int Punct Ident ….
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump(); // .
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    } else if cur.peek() == Some('.')
        && !cur
            .peek_at(1)
            .is_some_and(|c| is_ident_start(c) || c == '.')
    {
        // Trailing-dot float: `1.` (followed by `)`, whitespace, …).
        float = true;
        cur.bump();
    }
    // Exponent: e/E, optional sign, at least one digit.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let sign = matches!(cur.peek_at(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump(); // e
            if sign {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    cur.eat_while(is_ident_continue); // suffix
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    fn assert_tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap or overlap at {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens do not reach EOF in {src:?}");
    }

    #[test]
    fn comments_are_opaque() {
        let src = "// magic 0xC5\nlet x = 1; /* nested /* 0xC6 */ still comment */ y";
        assert_tiles(src);
        let ints: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Int)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(ints, vec!["1"]);
    }

    #[test]
    fn strings_and_raw_strings() {
        let src =
            r####"let a = "0xC5 \" quote"; let b = r#"raw " 0xC6"#; let c = br##"bytes"##;"####;
        assert_tiles(src);
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr));
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawByteStr));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Int));
    }

    #[test]
    fn lifetime_vs_char() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; let sp = ' '; }";
        assert_tiles(src);
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
    }

    #[test]
    fn raw_identifiers_and_byte_literals() {
        let src = "let r#fn = b'x'; let bare = r * 2; let b = r; b'\\n';";
        assert_tiles(src);
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "r#fn"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Byte).count(), 2);
    }

    #[test]
    fn numbers() {
        let src = "0xC5u8 1_000 2.5e-3f32 1..2 1.max(2) 7usize 0b1010 1. ";
        assert_tiles(src);
        let texts: Vec<(TokenKind, &str)> = lex(src)
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.kind, t.text(src)))
            .collect();
        assert_eq!(
            texts,
            vec![
                (TokenKind::Int, "0xC5u8"),
                (TokenKind::Int, "1_000"),
                (TokenKind::Float, "2.5e-3f32"),
                (TokenKind::Int, "1"),
                (TokenKind::Int, "2"),
                (TokenKind::Int, "1"),
                (TokenKind::Int, "2"),
                (TokenKind::Int, "7usize"),
                (TokenKind::Int, "0b1010"),
                (TokenKind::Float, "1."),
            ]
        );
    }

    #[test]
    fn unterminated_constructs_are_total() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'", "b'"] {
            assert_tiles(src);
        }
    }

    #[test]
    fn punct_structure_survives() {
        assert_eq!(
            kinds("x.unwrap()"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Punct
            ]
        );
    }
}
