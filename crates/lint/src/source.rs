//! Per-file analysis context: line table, prod-vs-test classification,
//! `lint:allow` suppressions, and a lightweight function map.
//!
//! Classification is byte-range based. A byte is *test context* when the
//! file itself is a test artifact (`tests/`, `benches/`, or a
//! `fixtures/` corpus) or when it falls inside an item annotated
//! `#[cfg(test)]` (the item span is recovered by brace matching over the
//! token stream, so braces inside strings or comments cannot confuse
//! it). Rules that only police production code call
//! [`SourceFile::in_test`] before firing.

use crate::lexer::{lex, Token, TokenKind};
use std::ops::Range;

/// A parsed `// lint:allow(rule-name): reason` comment.
///
/// A suppression silences diagnostics of `rule` on its own line and on
/// the line directly below it (so it can sit above the offending
/// expression or trail it on the same line). A missing `: reason` is
/// itself reported by the engine's suppression-hygiene check.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    pub has_reason: bool,
}

/// A function item discovered in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub kw_start: usize,
    /// Byte range of the body, `{` through `}` inclusive. Empty range at
    /// the signature end for bodyless (trait) declarations.
    pub body: Range<usize>,
    /// Whether `Result` appears in the signature (return type or
    /// parameters) — the analyzer's definition of a *fallible* function.
    pub returns_result: bool,
}

/// One workspace source file plus everything the rules need to know
/// about it.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// used in diagnostics and for path-scoped rules).
    pub path: String,
    pub src: String,
    pub tokens: Vec<Token>,
    line_starts: Vec<usize>,
    test_ranges: Vec<Range<usize>>,
    file_is_test: bool,
    pub suppressions: Vec<Suppression>,
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    pub fn new(path: String, src: String) -> Self {
        let tokens = lex(&src);
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let file_is_test = {
            let p = path.as_str();
            p.contains("/tests/")
                || p.starts_with("tests/")
                || p.contains("/benches/")
                || p.contains("/fixtures/")
        };
        let test_ranges = cfg_test_ranges(&src, &tokens);
        let suppressions = parse_suppressions(&src, &tokens, &line_starts);
        let fns = find_fns(&src, &tokens);
        SourceFile {
            path,
            src,
            tokens,
            line_starts,
            test_ranges,
            file_is_test,
            suppressions,
            fns,
        }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn line_col(&self, byte: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&byte) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, byte - self.line_starts[line] + 1)
    }

    /// Is this byte inside test context (test file or `#[cfg(test)]`
    /// item)?
    pub fn in_test(&self, byte: usize) -> bool {
        self.file_is_test || self.test_ranges.iter().any(|r| r.contains(&byte))
    }

    /// Is `rule` suppressed at (1-based) `line` by a `lint:allow` on
    /// this or the previous line?
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }

    /// The innermost function whose body contains `byte`.
    pub fn enclosing_fn(&self, byte: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&byte))
            .min_by_key(|f| f.body.len())
    }

    /// Indices of non-trivia tokens (rules operate on this view).
    pub fn code_tokens(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_trivia())
            .collect()
    }
}

/// Byte ranges of items annotated `#[cfg(test)]`.
///
/// Finds each `#[cfg(test)]` attribute (any attribute whose tokens
/// include both `cfg` and `test`), then extends the range across any
/// further attributes and the following item up to its matching `}` (or
/// `;` for bodyless items).
fn cfg_test_ranges(src: &str, tokens: &[Token]) -> Vec<Range<usize>> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let text = |ci: usize| -> &str { tok(ci).text(src) };
    let mut ranges = Vec::new();
    let mut ci = 0;
    while ci + 1 < code.len() {
        if !(tok(ci).kind == TokenKind::Punct && text(ci) == "#" && text(ci + 1) == "[") {
            ci += 1;
            continue;
        }
        // Scan the attribute body for `cfg` … `test` while finding `]`.
        let attr_start = tok(ci).start;
        let mut depth = 0usize;
        let mut j = ci + 1;
        let (mut saw_cfg, mut saw_test) = (false, false);
        while j < code.len() {
            match (tok(j).kind, text(j)) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokenKind::Ident, "cfg") => saw_cfg = true,
                (TokenKind::Ident, "test") => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            ci = j.max(ci + 1);
            continue;
        }
        // Skip any further attributes, then find the item's end.
        let mut k = j + 1;
        while k + 1 < code.len() && text(k) == "#" && text(k + 1) == "[" {
            let mut d = 0usize;
            while k < code.len() {
                match text(k) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Item: consume to the matching close of its first `{`, or to a
        // top-level `;` (e.g. `#[cfg(test)] use …;`).
        let mut brace = 0usize;
        let mut end = attr_start;
        while k < code.len() {
            match text(k) {
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        end = tok(k).end;
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end = tok(k).end;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if end > attr_start {
            ranges.push(attr_start..end);
            ci = k + 1;
        } else {
            ci += 1;
        }
    }
    ranges
}

fn parse_suppressions(src: &str, tokens: &[Token], line_starts: &[usize]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(at) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        let line = match line_starts.binary_search(&t.start) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        out.push(Suppression {
            rule,
            line,
            has_reason,
        });
    }
    out
}

/// A flat function map: each `fn name … { body }` with its body span and
/// whether the signature mentions `Result`. Nested functions appear as
/// separate (overlapping) entries; [`SourceFile::enclosing_fn`] picks
/// the innermost.
fn find_fns(src: &str, tokens: &[Token]) -> Vec<FnSpan> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let text = |ci: usize| -> &str { tok(ci).text(src) };
    let mut out = Vec::new();
    for ci in 0..code.len() {
        if !(tok(ci).kind == TokenKind::Ident && text(ci) == "fn") {
            continue;
        }
        let Some(name_ci) = code.get(ci + 1).map(|_| ci + 1) else {
            continue;
        };
        if tok(name_ci).kind != TokenKind::Ident {
            continue; // `fn(` in a function-pointer type
        }
        let name = text(name_ci).to_string();
        // Signature runs to the first `{` at paren/bracket depth 0 (or a
        // `;` for bodyless declarations).
        let mut depth = 0i32;
        let mut j = name_ci + 1;
        let mut returns_result = false;
        let mut body_open: Option<usize> = None;
        while j < code.len() {
            match (tok(j).kind, text(j)) {
                (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Ident, "Result") if depth >= 0 => returns_result = true,
                (TokenKind::Punct, "{") if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                (TokenKind::Punct, ";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let body = match body_open {
            Some(open) => {
                let mut brace = 0i32;
                let mut k = open;
                let start = tok(open).start;
                let mut end = src.len();
                while k < code.len() {
                    match text(k) {
                        "{" => brace += 1,
                        "}" => {
                            brace -= 1;
                            if brace == 0 {
                                end = tok(k).end;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                start..end
            }
            None => {
                let end = tok(j.min(code.len() - 1)).end;
                end..end
            }
        };
        out.push(FnSpan {
            name,
            kw_start: tok(ci).start,
            body,
            returns_result,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_cfg_test_items() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn prod2() {}\n";
        let f = SourceFile::new("crates/comm/src/x.rs".into(), src.into());
        let prod_at = src.find("x.unwrap").unwrap();
        let test_at = src.find("y.unwrap").unwrap();
        let prod2_at = src.find("prod2").unwrap();
        assert!(!f.in_test(prod_at));
        assert!(f.in_test(test_at));
        assert!(!f.in_test(prod2_at));
    }

    #[test]
    fn test_paths_are_fully_test() {
        let f = SourceFile::new("crates/comm/tests/chaos.rs".into(), "fn a() {}".into());
        assert!(f.in_test(0));
    }

    #[test]
    fn suppressions_cover_own_and_next_line() {
        let src = "// lint:allow(no-unwrap-on-comm-path): provably infallible\n\
                   x.unwrap();\n\
                   y.unwrap();\n\
                   z.unwrap(); // lint:allow(other-rule)\n";
        let f = SourceFile::new("crates/comm/src/x.rs".into(), src.into());
        assert!(f.is_suppressed("no-unwrap-on-comm-path", 1));
        assert!(f.is_suppressed("no-unwrap-on-comm-path", 2));
        assert!(!f.is_suppressed("no-unwrap-on-comm-path", 3));
        assert!(f.is_suppressed("other-rule", 4));
        assert!(f
            .suppressions
            .iter()
            .any(|s| s.rule == "other-rule" && !s.has_reason));
    }

    #[test]
    fn fn_map_tracks_result_signatures() {
        let src = "fn plain(x: u32) -> u32 { x }\n\
                   fn fallible() -> Result<(), E> { inner();\n Ok(()) }\n";
        let f = SourceFile::new("crates/kfac/src/x.rs".into(), src.into());
        assert_eq!(f.fns.len(), 2);
        assert!(!f.fns[0].returns_result);
        assert!(f.fns[1].returns_result);
        let inner_at = src.find("inner").unwrap();
        assert_eq!(f.enclosing_fn(inner_at).unwrap().name, "fallible");
    }
}
