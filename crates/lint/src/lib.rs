//! **compso-lint** — in-repo static analysis for the COMPSO workspace.
//!
//! Clippy cannot express this project's invariants: which byte values
//! are wire magics, which crates form the fallible comm path, which
//! string literals are obs counter names. This crate is a std-only
//! analyzer (no `syn`, no registry deps — the build environment is
//! offline) built from four layers:
//!
//! - [`lexer`] — a real Rust lexer whose token spans exactly tile every
//!   input file (property-tested over the whole workspace);
//! - [`source`] — per-file context: line table, prod-vs-`#[cfg(test)]`
//!   classification, `lint:allow` suppressions, a function map;
//! - [`rules`] — the rule catalogue (see `DESIGN.md` §11);
//! - [`engine`] + [`walker`] — diagnostics, the obs-name registry
//!   context, suppression hygiene, and deterministic file discovery;
//! - [`cache`] — the incremental `(mtime, size)` cache that keeps
//!   `--deny` runs inside the CI runtime budget by replaying verdicts
//!   for untouched files.
//!
//! The binary (`cargo run -p compso-lint`) walks the workspace, runs
//! every rule over production code, and in `--deny` mode exits non-zero
//! on any finding — wired into `scripts/ci.sh` with a hard runtime
//! budget. Fixture corpora under `fixtures/` pin each rule's firing,
//! clean, and suppressed behavior via golden diagnostics.

pub mod cache;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walker;

pub use cache::{check_workspace_cached, CacheStats};
pub use engine::{check_file, check_files, to_json, Context, Diagnostic};
pub use source::SourceFile;

use std::path::Path;

/// Paths (workspace-relative, `/`-separated) excluded from rule runs:
/// the analyzer itself. Its rule tables spell out the byte ranges and
/// name shapes they hunt for, and its fixtures contain deliberate
/// violations — linting them would be self-referential noise. The lexer
/// tiling property still covers these files.
pub fn rules_apply_to(rel_path: &str) -> bool {
    !rel_path.starts_with("crates/lint/")
}

/// Load and check the whole workspace rooted at `root`. Returns sorted
/// diagnostics; IO failures surface as `Err`.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let ctx = Context::from_workspace(root)?;
    let mut files = Vec::new();
    for path in walker::collect_files(root, false) {
        let rel = walker::rel_path(root, &path);
        if !rules_apply_to(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel, src));
    }
    Ok(check_files(&files, &ctx))
}
