//! **compso-lint** — in-repo static analysis for the COMPSO workspace.
//!
//! Clippy cannot express this project's invariants: which byte values
//! are wire magics, which crates form the fallible comm path, which
//! string literals are obs counter names, which functions must stay
//! deterministic, and which calls synchronize every rank. This crate is
//! a std-only analyzer (no `syn`, no registry deps — the build
//! environment is offline) built from these layers:
//!
//! - [`lexer`] — a real Rust lexer whose token spans exactly tile every
//!   input file (property-tested over the whole workspace);
//! - [`source`] — per-file context: line table, prod-vs-`#[cfg(test)]`
//!   classification, `lint:allow` suppressions, a function map;
//! - [`callgraph`] — the workspace symbol table + call graph: per-fn
//!   summaries (callees, impurity sources, collectives, length
//!   sources) and a fixpoint solver for transitive facts;
//! - [`rules`] — the rule catalogue as declarative tables (match
//!   patterns, path scopes, severities — see `DESIGN.md` §11);
//! - [`engine`] + [`walker`] — diagnostics, the registry contexts,
//!   suppression hygiene, and deterministic file discovery;
//! - [`cache`] — the incremental cache (v3): file identity plus
//!   per-file dependency fingerprints over call-graph facts, so
//!   editing a helper re-runs exactly its transitive dependents;
//! - [`fix`] — mechanical `--fix` rewrites for registry findings and
//!   swallowed comm errors.
//!
//! The binary (`cargo run -p compso-lint`) walks the workspace, runs
//! every rule over production code, and in `--deny` mode exits non-zero
//! on any deny-severity finding — wired into `scripts/ci.sh` with a
//! hard runtime budget. Fixture corpora under `fixtures/` pin each
//! rule's firing, clean, and suppressed behavior via golden
//! diagnostics.

pub mod cache;
pub mod callgraph;
pub mod engine;
pub mod fix;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walker;

pub use cache::{check_workspace_cached, CacheStats};
pub use engine::{check_file, check_files, to_json, Context, Diagnostic};
pub use source::SourceFile;

use std::path::Path;

/// Is `rel_path` (workspace-relative, `/`-separated) subject to rule
/// runs at all? Driven by the rule table's
/// [`rules::GLOBAL_EXCLUDE`] — the analyzer itself is the one excluded
/// subtree (its rule tables spell out the byte ranges and name shapes
/// they hunt for, and its fixtures contain deliberate violations). The
/// lexer tiling property still covers excluded files.
pub fn rules_apply_to(rel_path: &str) -> bool {
    !rules::GLOBAL_EXCLUDE
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// Load and check the whole workspace rooted at `root`. Returns sorted
/// diagnostics; IO failures surface as `Err`.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    Ok(engine::check_files(
        &load_workspace(root)?,
        &Context::from_workspace(root)?,
    ))
}

/// Read every first-party source file under `root` that rules apply to.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for path in walker::collect_files(root, false) {
        let rel = walker::rel_path(root, &path);
        if !rules_apply_to(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel, src));
    }
    Ok(files)
}
