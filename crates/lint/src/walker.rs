//! Workspace file discovery.
//!
//! Walks the repository's source roots (`crates/`, `src/`, `examples/`,
//! `tests/`, and optionally `shims/`) collecting `.rs` files in a
//! deterministic (sorted) order. `target/` build output and the lint
//! crate's own `fixtures/` corpus — files that deliberately contain
//! violations — are always skipped.

use std::path::{Path, PathBuf};

/// Source roots that carry first-party code subject to the rules.
pub const RULE_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Collect workspace `.rs` files under `root`. With `include_shims`,
/// the vendored `shims/` crates are included too (used by the lexer
/// tiling test, which must hold for *every* file we might ever lint).
pub fn collect_files(root: &Path, include_shims: bool) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in RULE_ROOTS {
        walk(&root.join(top), &mut out);
    }
    if include_shims {
        walk(&root.join("shims"), &mut out);
    }
    out.sort();
    out
}

/// Workspace-relative path with `/` separators (diagnostic identity).
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_file_but_not_fixtures() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let files = collect_files(&root, false);
        assert!(!files.is_empty());
        let rels: Vec<String> = files.iter().map(|p| rel_path(&root, p)).collect();
        assert!(rels.iter().any(|r| r == "crates/lint/src/walker.rs"));
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")));
        assert!(rels.iter().all(|r| !r.contains("/target/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk order must be deterministic");
    }
}
