//! `--fix`: mechanical rewrites for registry and swallowed-error
//! findings.
//!
//! Three rules have fixes that are pure text mechanics — no judgment,
//! no behavior choice beyond what the rule already demands:
//!
//! - **wire-magic-registry**: a bare `0xCx` literal whose value *is*
//!   registered becomes the named constant
//!   (`compso_core::wire::magic::MAGIC_…`; `crate::…` inside the core
//!   crate). An unregistered value is refused — inventing a registry
//!   entry is a design decision, not a fix.
//! - **counter-registry**: an unregistered counter-shaped literal is
//!   registered (a `pub const` appended to `crates/obs/src/names.rs`
//!   plus an entry in its `ALL` array — the registry's own self-check
//!   keeps them in sync) and the literal becomes the constant.
//! - **swallowed-comm-error**: `let _ = EXPR;` becomes `EXPR?;` when
//!   the enclosing function returns `Result`; otherwise refused (there
//!   is no error channel to propagate into).
//!
//! **Refusal discipline**: a fix never touches a line carrying
//! diagnostics of *other* rules — entangled findings need a human. All
//! refusals are reported with reasons. `plan` is pure (no IO);
//! [`run_fix`] applies edits bottom-up per file so byte offsets stay
//! valid, and the whole pass is **idempotent**: fixing a fixed tree
//! plans zero edits (pinned by `tests/fix.rs`, with one-pass
//! convergence).

use crate::engine::{check_files, Context, Diagnostic};
use crate::load_workspace;
use crate::rules::{let_underscore_stmts, wire_magic_value, View};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// One byte-span replacement in one file. `start == end` is an
/// insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    pub path: String,
    pub start: usize,
    pub end: usize,
    pub replacement: String,
}

/// The outcome of planning fixes over a diagnostic set.
#[derive(Debug, Default)]
pub struct FixPlan {
    pub edits: Vec<Edit>,
    /// Diagnostics the edits resolve.
    pub fixed: Vec<Diagnostic>,
    /// Fixable-rule diagnostics that were refused, with reasons.
    pub refused: Vec<(Diagnostic, String)>,
}

const FIXABLE: &[&str] = &[
    "wire-magic-registry",
    "counter-registry",
    "swallowed-comm-error",
];

/// Plan fixes for `diags` over `files`. Pure: returns edits without
/// touching disk. `files` must contain `crates/obs/src/names.rs` for
/// counter registrations to be plannable.
pub fn plan(files: &[SourceFile], ctx: &Context, diags: &[Diagnostic]) -> FixPlan {
    let mut out = FixPlan::default();
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let names_rs = by_path.get("crates/obs/src/names.rs").copied();
    let mut registered_this_pass: BTreeSet<String> = BTreeSet::new();

    for d in diags {
        if !FIXABLE.contains(&d.rule) {
            continue;
        }
        // Refuse lines entangled with findings of other rules.
        if let Some(other) = diags
            .iter()
            .find(|o| o.path == d.path && o.line == d.line && o.rule != d.rule)
        {
            out.refused.push((
                d.clone(),
                format!(
                    "line also carries a `{}` finding; fix that first",
                    other.rule
                ),
            ));
            continue;
        }
        let Some(file) = by_path.get(d.path.as_str()).copied() else {
            out.refused
                .push((d.clone(), "file not in the checked set".into()));
            continue;
        };
        let v = View::new(file);
        let Some(ci) = token_at(&v, d.line, d.col) else {
            out.refused
                .push((d.clone(), "diagnostic token not found".into()));
            continue;
        };
        let planned = match d.rule {
            "wire-magic-registry" => fix_wire_magic(&v, ci, ctx, file),
            "counter-registry" => fix_counter(&v, ci, file, names_rs, &mut registered_this_pass),
            "swallowed-comm-error" => fix_swallowed(&v, ci, file),
            _ => unreachable!("FIXABLE is exhaustive"),
        };
        match planned {
            Ok(edits) => {
                out.edits.extend(edits);
                out.fixed.push(d.clone());
            }
            Err(reason) => out.refused.push((d.clone(), reason)),
        }
    }
    out
}

/// Code-token index whose span starts at `(line, col)` (1-based).
fn token_at(v: &View, line: usize, col: usize) -> Option<usize> {
    (0..v.len()).find(|&ci| v.file.line_col(v.tok(ci).start) == (line, col))
}

fn fix_wire_magic(
    v: &View,
    ci: usize,
    ctx: &Context,
    file: &SourceFile,
) -> Result<Vec<Edit>, String> {
    let Some(value) = wire_magic_value(v.text(ci)) else {
        return Err("token is not a magic-shaped literal".into());
    };
    let Some(name) = ctx.magic_names.get(&value) else {
        return Err(format!(
            "0x{value:02X} has no constant in compso_core::wire::magic; \
             register it there first"
        ));
    };
    let path = if file.path.starts_with("crates/core/") {
        format!("crate::wire::magic::{name}")
    } else {
        format!("compso_core::wire::magic::{name}")
    };
    let t = v.tok(ci);
    Ok(vec![Edit {
        path: file.path.clone(),
        start: t.start,
        end: t.end,
        replacement: path,
    }])
}

/// `ns/seg(/seg)*` → `NS_SEG…` constant name.
fn const_name_for(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            '/' | '-' => '_',
            c => c.to_ascii_uppercase(),
        })
        .collect()
}

fn fix_counter(
    v: &View,
    ci: usize,
    file: &SourceFile,
    names_rs: Option<&SourceFile>,
    registered: &mut BTreeSet<String>,
) -> Result<Vec<Edit>, String> {
    let text = v.text(ci);
    let Some(value) = text
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .filter(|s| !s.contains('\\'))
    else {
        return Err("literal has escapes; register it by hand".into());
    };
    let Some(names_rs) = names_rs else {
        return Err("crates/obs/src/names.rs not in the checked set".into());
    };
    let cname = const_name_for(value);
    if !cname
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        || cname.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("cannot derive a constant name from \"{value}\""));
    }
    let mut edits = Vec::new();
    // Register once per value per pass; skip if names.rs already has it
    // under any name (then only the use-site rewrite is needed — but a
    // registered name would not have fired, so in practice this is the
    // fresh-registration path).
    if !registered.contains(value) {
        let src = &names_rs.src;
        let Some(all_at) = src.find("pub const ALL") else {
            return Err("names.rs has no `pub const ALL` anchor".into());
        };
        if src.contains(&format!("pub const {cname}:")) {
            return Err(format!(
                "names.rs already defines `{cname}` (for a different string); \
                 register \"{value}\" by hand"
            ));
        }
        let Some(close_rel) = src[all_at..].find("];") else {
            return Err("names.rs ALL array has no closing `];`".into());
        };
        edits.push(Edit {
            path: names_rs.path.clone(),
            start: all_at,
            end: all_at,
            replacement: format!("pub const {cname}: &str = \"{value}\";\n\n"),
        });
        edits.push(Edit {
            path: names_rs.path.clone(),
            start: all_at + close_rel,
            end: all_at + close_rel,
            replacement: format!("    {cname},\n"),
        });
        registered.insert(value.to_string());
    }
    let use_path = if file.path.starts_with("crates/obs/") {
        format!("crate::names::{cname}")
    } else {
        format!("compso_obs::names::{cname}")
    };
    let t = v.tok(ci);
    edits.push(Edit {
        path: file.path.clone(),
        start: t.start,
        end: t.end,
        replacement: use_path,
    });
    Ok(edits)
}

fn fix_swallowed(v: &View, ci: usize, file: &SourceFile) -> Result<Vec<Edit>, String> {
    let at = v.tok(ci).start;
    let stmt = let_underscore_stmts(v)
        .into_iter()
        .find(|s| s.contains(&ci))
        .ok_or_else(|| "no enclosing `let _ = …;` statement".to_string())?;
    let fallible = file.enclosing_fn(at).is_some_and(|f| f.returns_result);
    if !fallible {
        return Err(
            "enclosing fn does not return Result; no channel to propagate into \
             (handle or annotate instead)"
                .into(),
        );
    }
    // `let _ = EXPR ;` → `EXPR?;` — expr runs from the token after `=`
    // to the last token before `;`.
    let semi = stmt.end; // exclusive range ends exactly at the `;` index
    let expr_start = v.tok(stmt.start + 3).start;
    let expr_end = v.tok(semi - 1).end;
    let expr = file.src[expr_start..expr_end].trim_end();
    Ok(vec![Edit {
        path: file.path.clone(),
        start: v.tok(stmt.start).start,
        end: v.tok(semi).end,
        replacement: format!("{expr}?;"),
    }])
}

/// Apply `edits` to in-memory sources keyed by path. Edits are applied
/// bottom-up per file; overlapping edits are an error (the planner
/// never produces them).
pub fn apply(sources: &mut BTreeMap<String, String>, edits: &[Edit]) -> Result<usize, String> {
    let mut by_path: BTreeMap<&str, Vec<&Edit>> = BTreeMap::new();
    for e in edits {
        by_path.entry(e.path.as_str()).or_default().push(e);
    }
    let mut applied = 0;
    for (path, mut es) in by_path {
        let Some(src) = sources.get_mut(path) else {
            return Err(format!("{path}: not loaded"));
        };
        es.sort_by_key(|e| (e.start, e.end));
        for w in es.windows(2) {
            if w[0].end > w[1].start {
                return Err(format!("{path}: overlapping edits"));
            }
        }
        for e in es.iter().rev() {
            if e.end > src.len() {
                return Err(format!("{path}: edit out of range"));
            }
            src.replace_range(e.start..e.end, &e.replacement);
            applied += 1;
        }
    }
    Ok(applied)
}

/// Summary of a `--fix` / `--fix-dry-run` pass.
#[derive(Debug)]
pub struct FixReport {
    /// Diagnostics fixed (or, dry: that would be fixed).
    pub fixed: Vec<Diagnostic>,
    /// Refused fixable diagnostics with reasons.
    pub refused: Vec<(Diagnostic, String)>,
    /// Files rewritten (empty in dry runs).
    pub rewritten: Vec<String>,
}

/// Plan fixes for the workspace at `root` and, unless `dry`, write the
/// rewritten files back. Returns the report; callers re-lint to verify
/// (the `tests/fix.rs` suite pins fix-then-relint-clean).
pub fn run_fix(root: &Path, dry: bool) -> io::Result<FixReport> {
    let files = load_workspace(root)?;
    let ctx = Context::from_workspace(root)?;
    // check_files runs the call-graph pre-pass itself, so `diags` is
    // the full rule set — the entangled-line refusal sees everything.
    let diags = check_files(&files, &ctx);
    let plan = plan(&files, &ctx, &diags);
    let mut rewritten = Vec::new();
    if !dry && !plan.edits.is_empty() {
        let mut sources: BTreeMap<String, String> = files
            .iter()
            .map(|f| (f.path.clone(), f.src.clone()))
            .collect();
        apply(&mut sources, &plan.edits).map_err(io::Error::other)?;
        let touched: BTreeSet<&str> = plan.edits.iter().map(|e| e.path.as_str()).collect();
        for path in touched {
            std::fs::write(root.join(path), &sources[path])?;
            rewritten.push(path.to_string());
        }
    }
    Ok(FixReport {
        fixed: plan.fixed,
        refused: plan.refused,
        rewritten,
    })
}
