//! Workspace call-graph engine: per-function summaries and a transitive
//! fact solver.
//!
//! This generalizes PR 8's ad-hoc length-source pre-pass into the shared
//! substrate the v3 rules stand on. Pass 1 walks every production
//! function and records a [`FnSummary`]: the set of callee names it
//! mentions (`ident (` pairs — method calls and free calls look the same
//! at token level), which *impurity sources* it touches directly
//! (wall-clock reads, RNG, `HashMap` iteration), whether it names a
//! collective, and whether it is a length-source (PR 8's definition).
//! Pass 2 ([`solve`]) merges the summaries into a name-keyed graph and
//! runs a monotone fixpoint:
//!
//! - `impure`: a bitmask of [`CLOCK`]/[`RNG`]/[`MAP_ITER`], OR-folded
//!   over callees — except through *allowlisted* functions (audited
//!   transport deadlines/backoff, see
//!   [`crate::rules::determinism_allow`]), whose impurity is pinned to
//!   zero so it never propagates to callers;
//! - `collective`: does the function, directly or transitively, issue a
//!   collective call ([`crate::rules::COLLECTIVES`]);
//! - `roots`: which *determinism-critical* functions
//!   ([`crate::rules::CRITICAL_ROOTS`] — controller observe/decide, wire
//!   codecs, checkpoint snapshot/restore, `DistKfac::step*`) reach this
//!   function. The root cone is a forward BFS over call edges that never
//!   enters an allowlisted node: an audited allow covers the whole
//!   subtree behind it.
//!
//! The graph is **name-keyed**: two functions with the same name merge
//! into one node (callees unioned, flags OR-ed). That over-approximates
//! — a trait has many impls, `step` exists on three optimizers — which
//! is the sound direction for every consumer: more reachability can only
//! add findings, never hide one, and audited `lint:allow` carries the
//! precision back. Test code never contributes summaries.

use crate::engine::Context;
use crate::rules::{determinism_allow, is_critical_root, View, COLLECTIVES};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Impurity kind: reads the wall clock (`Instant::now`, `SystemTime`).
pub const CLOCK: u8 = 1;
/// Impurity kind: nondeterministic randomness (`thread_rng`, `OsRng`…).
pub const RNG: u8 = 2;
/// Impurity kind: iterates a `HashMap` (order is per-process random).
pub const MAP_ITER: u8 = 4;

/// Human name for the lowest set impurity bit (diagnostics).
pub fn impurity_name(mask: u8) -> &'static str {
    if mask & CLOCK != 0 {
        "wall-clock read"
    } else if mask & RNG != 0 {
        "nondeterministic RNG"
    } else if mask & MAP_ITER != 0 {
        "HashMap iteration order"
    } else {
        "impurity"
    }
}

/// One production function's direct facts, before propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    pub name: String,
    /// Names this function mentions in call position (`ident (`).
    pub callees: BTreeSet<String>,
    /// Direct impurity sources in the body (CLOCK | RNG | MAP_ITER).
    pub direct_impure: u8,
    /// PR 8 length-source: returns an unclamped wire-read length.
    pub length_source: bool,
}

/// All summaries from one file, tagged with its workspace path (root
/// matching is `(defining path, fn name)`-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSummaries {
    pub path: String,
    pub fns: Vec<FnSummary>,
}

/// Transitive facts for one function name after [`solve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFacts {
    /// Reachable impurity kinds (cut at allowlisted functions).
    pub impure: u8,
    /// Issues a collective, directly or transitively.
    pub collective: bool,
    /// Length-source (any definition under this name).
    pub length_source: bool,
    /// Determinism-critical roots whose call cone contains this fn.
    pub roots: BTreeSet<String>,
}

/// One direct impurity site in a file: `(code-token index, kind)`.
pub struct ImpuritySite {
    pub ci: usize,
    pub kind: u8,
}

/// Identifiers that mark nondeterministic randomness at token level.
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Keyword-ish identifiers never treated as callee names even when
/// followed by `(` (control flow, bindings, common enum constructors).
const NOT_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "mut", "move",
    "else", "impl", "where", "use", "pub", "mod", "dyn", "ref", "break", "continue", "await",
    "unsafe", "Some", "None", "Ok", "Err", "Self", "self",
];

/// Direct impurity sites in a file's production code, in token order.
///
/// - `Instant :: now` / `SystemTime :: now` → [`CLOCK`] (at the type
///   ident, so the diagnostic points at the read);
/// - an RNG identifier ([`RNG_IDENTS`]) → [`RNG`];
/// - an iteration call or `for`-header use of a `HashMap`-typed
///   identifier → [`MAP_ITER`] (same detection the
///   `nondeterministic-wire-iteration` rule uses, but in any function).
pub fn impurity_sites(v: &View) -> Vec<ImpuritySite> {
    let mut out = Vec::new();
    let maps = crate::rules::hashmap_idents(v);
    let all: Vec<usize> = (0..v.len()).collect();
    for ci in 0..v.len() {
        if v.file.in_test(v.tok(ci).start) {
            continue;
        }
        let text = v.text(ci);
        if (text == "Instant" || text == "SystemTime")
            && v.is_punct(ci + 1, ":")
            && v.is_punct(ci + 2, ":")
            && v.is_ident(ci + 3, "now")
        {
            out.push(ImpuritySite { ci, kind: CLOCK });
        } else if RNG_IDENTS.contains(&text) {
            out.push(ImpuritySite { ci, kind: RNG });
        } else if maps.contains(text)
            && (crate::rules::is_iter_call(v, &all, ci) || crate::rules::in_for_header(v, &all, ci))
        {
            out.push(ImpuritySite { ci, kind: MAP_ITER });
        }
    }
    out
}

/// Pass 1: summarize every production function in `file`.
///
/// Tokens are attributed to the innermost enclosing function; a call to
/// a nested fn from its parent still yields the edge (the call site sits
/// in the parent's body but outside the nested body).
pub fn summarize(file: &SourceFile) -> FileSummaries {
    let v = View::new(file);
    // One summary slot per FnSpan, keyed by span identity (duplicates
    // by name merge later, in solve).
    let mut fns: Vec<FnSummary> = file
        .fns
        .iter()
        .map(|f| FnSummary {
            name: f.name.clone(),
            callees: BTreeSet::new(),
            direct_impure: 0,
            length_source: false,
        })
        .collect();
    let slot_of = |byte: usize| -> Option<usize> {
        // Innermost enclosing fn, as an index into `file.fns`.
        file.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.contains(&byte))
            .min_by_key(|(_, f)| f.body.len())
            .map(|(i, _)| i)
    };

    // Callee edges: `ident (` pairs in prod code, minus keywords and
    // definition sites (`fn name(`).
    for ci in 0..v.len().saturating_sub(1) {
        if !v.is_punct(ci + 1, "(") {
            continue;
        }
        let t = v.tok(ci);
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let name = v.text(ci);
        if NOT_CALLEES.contains(&name) {
            continue;
        }
        if ci > 0 && v.is_ident(ci - 1, "fn") {
            continue;
        }
        if file.in_test(t.start) {
            continue;
        }
        if let Some(slot) = slot_of(t.start) {
            fns[slot].callees.insert(name.to_string());
        }
    }

    for site in impurity_sites(&v) {
        if let Some(slot) = slot_of(v.tok(site.ci).start) {
            fns[slot].direct_impure |= site.kind;
        }
    }

    let sources = crate::rules::length_prefix::collect_length_sources(file);
    for f in &mut fns {
        if sources.iter().any(|s| s == &f.name) {
            f.length_source = true;
        }
    }

    // Drop test fns (no body tokens contributed anyway, but their empty
    // summaries would still merge into the graph under their name).
    let keep: Vec<bool> = file.fns.iter().map(|f| !file.in_test(f.kw_start)).collect();
    let fns = fns
        .into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect();
    FileSummaries {
        path: file.path.clone(),
        fns,
    }
}

/// Pass 2: merge summaries into the name-keyed graph and run the
/// fixpoint. See the module docs for the propagation rules.
///
/// Names are interned to dense ids up front so the fixpoint and root
/// BFS walk integer edges over flat arrays — this runs on every warm
/// cached invocation, and string-keyed maps put it outside the 10ms
/// budget.
pub fn solve(files: &[FileSummaries]) -> BTreeMap<String, FnFacts> {
    let mut ids: BTreeMap<&str, usize> = BTreeMap::new();
    for f in files.iter().flat_map(|fs| &fs.fns) {
        let next = ids.len();
        ids.entry(f.name.as_str()).or_insert(next);
    }
    let n = ids.len();
    let mut names: Vec<&str> = vec![""; n];
    let mut impure = vec![0u8; n];
    let mut collective = vec![false; n];
    let mut length_source = vec![false; n];
    let mut allowed = vec![false; n];
    let mut root = vec![false; n];
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (name, &i) in &ids {
        names[i] = name;
        allowed[i] = determinism_allow(name).is_some();
    }
    for fs in files {
        for f in &fs.fns {
            let i = ids[f.name.as_str()];
            impure[i] |= f.direct_impure;
            length_source[i] |= f.length_source;
            collective[i] |= COLLECTIVES.contains(&f.name.as_str())
                || f.callees.iter().any(|c| COLLECTIVES.contains(&c.as_str()));
            root[i] |= is_critical_root(&fs.path, &f.name);
            // Edges to undefined names carry no facts; drop them here.
            callees[i].extend(f.callees.iter().filter_map(|c| ids.get(c.as_str())));
        }
    }
    for es in &mut callees {
        es.sort_unstable();
        es.dedup();
    }
    // Allowlisted nodes: impurity pinned to zero (the audit covers
    // whatever they reach). Collectives still propagate through them.
    for i in 0..n {
        if allowed[i] {
            impure[i] = 0;
        }
    }

    // Monotone fixpoint over (impure, collective).
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut im = impure[i];
            let mut co = collective[i];
            for &j in &callees[i] {
                if !allowed[i] {
                    im |= impure[j];
                }
                co |= collective[j];
            }
            if (im, co) != (impure[i], collective[i]) {
                impure[i] = im;
                collective[i] = co;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Root cones: forward BFS from each critical root, not entering
    // allowlisted nodes.
    let mut roots_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        if !root[r] {
            continue;
        }
        let mut queue = VecDeque::from([r]);
        let mut seen = vec![false; n];
        seen[r] = true;
        while let Some(at) = queue.pop_front() {
            roots_of[at].push(r);
            for &j in &callees[at] {
                if allowed[j] || seen[j] {
                    continue;
                }
                seen[j] = true;
                queue.push_back(j);
            }
        }
    }

    ids.iter()
        .map(|(name, &i)| {
            (
                name.to_string(),
                FnFacts {
                    impure: impure[i],
                    collective: collective[i],
                    length_source: length_source[i],
                    roots: roots_of[i].iter().map(|&r| names[r].to_string()).collect(),
                },
            )
        })
        .collect()
}

/// Rule-side view over facts: the file's own local solve unioned with
/// the workspace-wide solve from the engine [`Context`]. Single-file
/// entry points (fixtures, direct `check_file`) still get intra-file
/// transitivity; workspace runs see the full graph.
pub struct Facts<'a> {
    local: BTreeMap<String, FnFacts>,
    global: &'a BTreeMap<String, FnFacts>,
}

impl Facts<'_> {
    /// Union of the local and global facts for `name`.
    pub fn get(&self, name: &str) -> FnFacts {
        let mut out = self.local.get(name).cloned().unwrap_or_default();
        if let Some(g) = self.global.get(name) {
            out.impure |= g.impure;
            out.collective |= g.collective;
            out.length_source |= g.length_source;
            out.roots.extend(g.roots.iter().cloned());
        }
        out
    }

    pub fn collective(&self, name: &str) -> bool {
        self.local.get(name).is_some_and(|f| f.collective)
            || self.global.get(name).is_some_and(|f| f.collective)
    }
}

/// Build the merged facts view for one file under `ctx`.
pub fn file_facts<'a>(file: &SourceFile, ctx: &'a Context) -> Facts<'a> {
    Facts {
        local: solve(&[summarize(file)]),
        global: &ctx.facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), src.into())
    }

    #[test]
    fn direct_and_transitive_impurity() {
        let f = sf(
            "crates/comm/src/x.rs",
            "fn leaf() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             fn mid() -> u64 { leaf() }\n\
             fn top() -> u64 { mid() + 1 }\n\
             fn pure(x: u64) -> u64 { x + 1 }\n",
        );
        let facts = solve(&[summarize(&f)]);
        assert_eq!(facts["leaf"].impure, CLOCK);
        assert_eq!(facts["mid"].impure, CLOCK);
        assert_eq!(facts["top"].impure, CLOCK);
        assert_eq!(facts["pure"].impure, 0);
    }

    #[test]
    fn collectives_propagate_and_roots_cone() {
        let f = sf(
            "crates/kfac/src/distributed.rs",
            "fn step(c: &C) -> Result<(), E> { sync(c) }\n\
             fn sync(c: &C) -> Result<(), E> { c.allreduce_sum(&mut [0.0]) }\n\
             fn unrelated() {}\n",
        );
        let facts = solve(&[summarize(&f)]);
        assert!(facts["sync"].collective);
        assert!(facts["step"].collective);
        assert!(!facts["unrelated"].collective);
        // `step` in crates/kfac is a critical root; its cone covers sync.
        assert!(facts["step"].roots.contains("step"));
        assert!(facts["sync"].roots.contains("step"));
        assert!(facts["unrelated"].roots.is_empty());
    }

    #[test]
    fn allowlist_cuts_impurity_and_root_cone() {
        // `recv_arq_inner` is on the audited transport allowlist: its
        // clock read must not leak to callers, and root cones stop at it.
        assert!(
            determinism_allow("recv_arq_inner").is_some(),
            "test assumes recv_arq_inner is allowlisted"
        );
        let f = sf(
            "crates/kfac/src/distributed.rs",
            "fn step(c: &C) -> Result<(), E> { recv_arq_inner(c) }\n\
             fn recv_arq_inner(c: &C) -> Result<(), E> { clocky(c) }\n\
             fn clocky(c: &C) -> Result<(), E> { let t = Instant::now(); c.go(t) }\n",
        );
        let facts = solve(&[summarize(&f)]);
        assert_eq!(facts["clocky"].impure, CLOCK);
        assert_eq!(facts["recv_arq_inner"].impure, 0, "allow pins impurity");
        assert_eq!(facts["step"].impure, 0, "allow cuts propagation");
        assert!(facts["step"].roots.contains("step"));
        assert!(
            !facts["clocky"].roots.contains("step"),
            "root cone must not pass through an allowlisted node"
        );
    }

    #[test]
    fn cross_file_edges_resolve_in_one_solve() {
        let a = sf(
            "crates/ctrl/src/controller.rs",
            "pub fn observe(&mut self) -> Decision { helper() }\n",
        );
        let b = sf(
            "crates/ctrl/src/util.rs",
            "pub fn helper() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        );
        let facts = solve(&[summarize(&a), summarize(&b)]);
        assert_eq!(facts["observe"].impure, CLOCK);
        assert!(facts["helper"].roots.contains("observe"));
    }

    #[test]
    fn test_code_contributes_nothing() {
        let f = sf(
            "crates/comm/src/x.rs",
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { let r = thread_rng(); prod(); }\n}\n",
        );
        let s = summarize(&f);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "prod");
        let facts = solve(&[s]);
        assert!(!facts.contains_key("t"));
        assert_eq!(facts["prod"].impure, 0);
    }

    #[test]
    fn hashmap_iteration_is_an_impurity_source() {
        let f = sf(
            "crates/ckpt/src/x.rs",
            "fn snapshot(m: HashMap<u32, u32>) -> Vec<u8> {\n\
                 let mut out = Vec::new();\n\
                 for (k, v) in m.iter() { out.push(*k as u8); }\n\
                 out\n}\n",
        );
        let facts = solve(&[summarize(&f)]);
        assert_eq!(facts["snapshot"].impure & MAP_ITER, MAP_ITER);
    }
}
