//! Parallel reductions over `f32` slices.
//!
//! §4.5 of the paper computes per-layer extrema (needed to normalize before
//! quantization) with a two-level GPU reduction: block-level reduction in
//! shared memory with warp-level shuffles underneath, then a small number
//! of global-memory updates. The CPU analogue implemented here reduces
//! fixed-size chunks privately per task ("block"), combining chunk-local
//! results in a tree ("shuffle"), and only then touches the shared result.
//! Both the hierarchical and a flat single-thread reference implementation
//! are provided so the ablation benchmarks can compare them.

use rayon::prelude::*;

/// Chunk size of the hierarchical reduction; plays the role of the CUDA
/// thread-block tile. 16 KiB of f32s — comfortably inside L1.
pub const REDUCE_CHUNK: usize = 4096;

/// Min/max pair produced by range scans.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinMax {
    pub min: f32,
    pub max: f32,
}

impl MinMax {
    /// The neutral element of the min/max monoid.
    pub const EMPTY: MinMax = MinMax {
        min: f32::INFINITY,
        max: f32::NEG_INFINITY,
    };

    /// Merges two partial results.
    #[inline]
    pub fn merge(self, other: MinMax) -> MinMax {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Largest absolute value covered by the range.
    #[inline]
    pub fn abs_max(&self) -> f32 {
        self.min.abs().max(self.max.abs())
    }
}

/// Flat, sequential min/max scan — the reference implementation.
pub fn minmax_flat(xs: &[f32]) -> MinMax {
    let mut mm = MinMax::EMPTY;
    for &x in xs {
        mm.min = mm.min.min(x);
        mm.max = mm.max.max(x);
    }
    mm
}

/// 8-lane unrolled min/max leaf scan — the warp-shuffle analogue of the
/// GPU block reduction, and the leaf kernel of [`minmax_hierarchical`].
///
/// Eight independent accumulator lanes strip-mine the slice (breaking the
/// serial min/max dependency chain so the ALUs pipeline), then the lanes
/// and the scalar remainder merge in a fixed order. `min`/`max` are
/// commutative and associative over the totally-ordered non-NaN floats,
/// so the result is value-identical to [`minmax_flat`] — the retained
/// scalar oracle — for every input the pipeline feeds it (gradients are
/// NaN-free by construction; `prop_minmax_lanes_matches_flat` pins the
/// equivalence, signed zeros included).
pub fn minmax_lanes(xs: &[f32]) -> MinMax {
    let mut lo = [f32::INFINITY; 8];
    let mut hi = [f32::NEG_INFINITY; 8];
    let mut it = xs.chunks_exact(8);
    for c in it.by_ref() {
        for j in 0..8 {
            lo[j] = lo[j].min(c[j]);
            hi[j] = hi[j].max(c[j]);
        }
    }
    let mut mm = minmax_flat(it.remainder());
    for j in 0..8 {
        mm.min = mm.min.min(lo[j]);
        mm.max = mm.max.max(hi[j]);
    }
    mm
}

/// Hierarchical parallel min/max: chunk-private 8-lane scans combined in
/// a rayon reduction tree.
pub fn minmax_hierarchical(xs: &[f32]) -> MinMax {
    if xs.len() <= REDUCE_CHUNK {
        return minmax_lanes(xs);
    }
    xs.par_chunks(REDUCE_CHUNK)
        .map(minmax_lanes)
        .reduce(|| MinMax::EMPTY, MinMax::merge)
}

/// Flat, sequential largest-absolute-value scan.
pub fn absmax_flat(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Hierarchical parallel largest-absolute-value scan.
pub fn absmax_hierarchical(xs: &[f32]) -> f32 {
    if xs.len() <= REDUCE_CHUNK {
        return absmax_flat(xs);
    }
    xs.par_chunks(REDUCE_CHUNK)
        .map(absmax_flat)
        .reduce(|| 0.0f32, f32::max)
}

/// Kahan-compensated sequential sum (f64 accumulator), used as the exact
/// reference for parallel sums.
pub fn sum_flat(xs: &[f32]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let y = x as f64 - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Hierarchical parallel sum with f64 chunk accumulators.
pub fn sum_hierarchical(xs: &[f32]) -> f64 {
    if xs.len() <= REDUCE_CHUNK {
        return sum_flat(xs);
    }
    xs.par_chunks(REDUCE_CHUNK).map(sum_flat).sum()
}

/// Squared L2 norm in f64.
pub fn sum_squares(xs: &[f32]) -> f64 {
    if xs.len() <= REDUCE_CHUNK {
        return xs.iter().map(|&v| v as f64 * v as f64).sum();
    }
    xs.par_chunks(REDUCE_CHUNK)
        .map(|c| c.iter().map(|&v| v as f64 * v as f64).sum::<f64>())
        .sum()
}

/// L2 norm.
pub fn l2_norm(xs: &[f32]) -> f64 {
    sum_squares(xs).sqrt()
}

/// Mean and (population) variance in one pass per chunk.
pub fn mean_var(xs: &[f32]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = sum_hierarchical(xs) / n;
    let ssq = if xs.len() <= REDUCE_CHUNK {
        xs.iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
    } else {
        xs.par_chunks(REDUCE_CHUNK)
            .map(|c| {
                c.iter()
                    .map(|&v| {
                        let d = v as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
            })
            .sum()
    };
    (mean, ssq / n)
}

/// Counts elements with `|x| < threshold` — the filter-selectivity probe the
/// layer-wise adaptive mechanism uses.
pub fn count_below(xs: &[f32], threshold: f32) -> usize {
    if xs.len() <= REDUCE_CHUNK {
        return xs.iter().filter(|&&v| v.abs() < threshold).count();
    }
    xs.par_chunks(REDUCE_CHUNK)
        .map(|c| c.iter().filter(|&&v| v.abs() < threshold).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn data(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v);
        v
    }

    #[test]
    fn minmax_agrees_flat_vs_hierarchical() {
        for n in [0usize, 1, 100, REDUCE_CHUNK, REDUCE_CHUNK + 1, 100_000] {
            let xs = data(n, 1 + n as u64);
            let a = minmax_flat(&xs);
            let b = minmax_hierarchical(&xs);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn minmax_lanes_agrees_with_flat_on_awkward_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 4096, 4097] {
            let xs = data(n, 31 + n as u64);
            assert_eq!(minmax_lanes(&xs), minmax_flat(&xs), "n={n}");
        }
    }

    proptest::proptest! {
        /// Lane-vs-flat value identity over arbitrary finite floats,
        /// signed zeros and subnormals included (NaN excluded: min/max
        /// over NaN is not order-independent, and the pipeline never
        /// feeds NaN gradients).
        #[test]
        fn prop_minmax_lanes_matches_flat(
            bits in proptest::collection::vec(proptest::prelude::any::<u32>(), 0..600),
        ) {
            let xs: Vec<f32> = bits
                .iter()
                .map(|&b| {
                    let v = f32::from_bits(b);
                    if v.is_nan() { 0.0 } else { v }
                })
                .collect();
            proptest::prop_assert_eq!(minmax_lanes(&xs), minmax_flat(&xs));
        }
    }

    #[test]
    fn absmax_agrees_and_is_nonnegative() {
        let xs = data(50_000, 2);
        let a = absmax_flat(&xs);
        let b = absmax_hierarchical(&xs);
        assert_eq!(a, b);
        assert!(a >= 0.0);
        assert!(xs.iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn empty_slices() {
        assert_eq!(minmax_flat(&[]), MinMax::EMPTY);
        assert_eq!(absmax_hierarchical(&[]), 0.0);
        assert_eq!(sum_hierarchical(&[]), 0.0);
        assert_eq!(mean_var(&[]), (0.0, 0.0));
    }

    #[test]
    fn sum_matches_reference_closely() {
        let xs = data(200_000, 3);
        let flat = sum_flat(&xs);
        let hier = sum_hierarchical(&xs);
        assert!((flat - hier).abs() < 1e-6 * xs.len() as f64);
    }

    #[test]
    fn l2_norm_of_unit_vectors() {
        let mut xs = vec![0.0f32; 100];
        xs[3] = 3.0;
        xs[10] = 4.0;
        assert!((l2_norm(&xs) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_var_of_standard_normal() {
        let xs = data(300_000, 4);
        let (m, v) = mean_var(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
    }

    #[test]
    fn count_below_threshold() {
        let xs = vec![0.1f32, -0.2, 0.5, -0.04, 0.0];
        assert_eq!(count_below(&xs, 0.15), 3); // 0.1, -0.04, 0.0
        assert_eq!(count_below(&xs, 1.0), 5);
        assert_eq!(count_below(&xs, 0.0), 0);
    }

    #[test]
    fn abs_max_of_range() {
        let mm = MinMax {
            min: -3.0,
            max: 2.0,
        };
        assert_eq!(mm.abs_max(), 3.0);
    }
}
