//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! K-FAC inverts its Kronecker factors through their eigendecompositions
//! (Eq. 2 of the paper). The factors are symmetric positive semi-definite
//! covariance matrices, which is exactly the regime where Jacobi rotation
//! sweeps are simple, unconditionally convergent, and accurate to machine
//! precision. Computation runs in `f64` internally for stability and is
//! returned as `f32` to match the rest of the stack.

use crate::matrix::Matrix;

/// The result of a symmetric eigendecomposition `A = Q diag(λ) Qᵀ`.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f32>,
    /// Orthonormal eigenvectors; column `j` corresponds to `values[j]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Reconstructs `Q diag(λ) Qᵀ` — used by tests to validate the factorization.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        // scaled[:, j] *= λ_j
        for i in 0..n {
            for j in 0..n {
                let v = scaled.get(i, j) * self.values[j];
                scaled.set(i, j, v);
            }
        }
        scaled.matmul_t(&self.vectors)
    }

    /// Applies `f` to each eigenvalue and reconstructs — the spectral
    /// function machinery K-FAC uses for `(A + γI)^{-1}` and friends.
    pub fn map_spectrum(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mapped = EigenDecomposition {
            values: self.values.iter().map(|&v| f(v)).collect(),
            vectors: self.vectors.clone(),
        };
        mapped.reconstruct()
    }
}

/// One Jacobi rotation applied to columns `p` and `r` of a row-major
/// `n×n` buffer: every row's `(p, r)` pair maps through the fixed 2×2
/// rotation. Iterating whole rows via `chunks_exact_mut` removes the
/// per-step index arithmetic of the scalar `a[k*n+p]` loop; the
/// arithmetic per element is unchanged, so the sweep stays bit-identical
/// (pinned by `rotation_panels_bit_identical_to_scalar`).
#[inline(always)]
fn rotate_cols(a: &mut [f64], n: usize, p: usize, r: usize, c: f64, s: f64) {
    for row in a.chunks_exact_mut(n) {
        let xp = row[p];
        let xr = row[r];
        row[p] = c * xp - s * xr;
        row[r] = s * xp + c * xr;
    }
}

/// The same rotation applied to rows `p` and `r` (`p < r`): the two
/// contiguous row panels come from `split_at_mut`, and the elementwise
/// update carries no loop dependence, so it vectorizes.
#[inline(always)]
fn rotate_rows(a: &mut [f64], n: usize, p: usize, r: usize, c: f64, s: f64) {
    debug_assert!(p < r);
    let (top, bottom) = a.split_at_mut(r * n);
    let prow = &mut top[p * n..p * n + n];
    let rrow = &mut bottom[..n];
    for (x, y) in prow.iter_mut().zip(rrow) {
        let xp = *x;
        let xr = *y;
        *x = c * xp - s * xr;
        *y = s * xp + c * xr;
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// # Panics
/// If the matrix is not square. Asymmetry beyond f32 round-off should be
/// removed with [`Matrix::symmetrize`] first; the routine symmetrizes its
/// internal copy regardless.
pub fn sym_eig(m: &Matrix) -> EigenDecomposition {
    assert_eq!(m.rows(), m.cols(), "sym_eig needs a square matrix");
    let n = m.rows();
    if n == 0 {
        return EigenDecomposition {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        };
    }

    // Work in f64: a = (M + Mᵀ)/2.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = 0.5 * (m.get(i, j) as f64 + m.get(j, i) as f64);
        }
    }
    let mut q = vec![0.0f64; n * n];
    for i in 0..n {
        q[i * n + i] = 1.0;
    }

    let off_diag_norm = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        (2.0 * s).sqrt()
    };

    let scale = {
        let mut mx = 0.0f64;
        for &v in &a {
            mx = mx.max(v.abs());
        }
        mx.max(1e-300)
    };
    let tol = 1e-14 * scale * n as f64;
    let max_sweeps = 64;

    for _sweep in 0..max_sweeps {
        if off_diag_norm(&a) <= tol {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apr = a[p * n + r];
                if apr.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                let app = a[p * n + p];
                let arr = a[r * n + r];
                // Standard stable rotation computation.
                let theta = (arr - app) / (2.0 * apr);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A <- JᵀAJ applied to rows/cols p, r (columns first —
                // the order is part of the pinned bit-exact trajectory).
                rotate_cols(&mut a, n, p, r, c, s);
                rotate_rows(&mut a, n, p, r, c, s);
                // Accumulate Q <- QJ.
                rotate_cols(&mut q, n, p, r, c, s);
            }
        }
    }

    // Extract, sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    order.sort_by(|&x, &y| diag[y].partial_cmp(&diag[x]).unwrap());

    let values: Vec<f32> = order.iter().map(|&i| diag[i] as f32).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (col, &src) in order.iter().enumerate() {
        for row in 0..n {
            vectors.set(row, col, q[row * n + src] as f32);
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::random_normal(n, n, &mut rng);
        let mut spd = b.t_matmul(&b);
        spd.add_diag(0.1);
        spd.symmetrize();
        spd
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let e = sym_eig(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 2.0).abs() < 1e-5);
        assert!((e.values[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = sym_eig(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn reconstruction_matches_input() {
        for n in [1usize, 2, 5, 17, 48] {
            let m = random_spd(n, 100 + n as u64);
            let e = sym_eig(&m);
            let r = e.reconstruct();
            let scale = m.max_abs().max(1.0);
            assert!(
                r.max_diff(&m) < 1e-3 * scale,
                "n={n} diff {}",
                r.max_diff(&m)
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = random_spd(20, 7);
        let e = sym_eig(&m);
        let qtq = e.vectors.t_matmul(&e.vectors);
        let i = Matrix::identity(20);
        assert!(qtq.max_diff(&i) < 1e-4, "diff {}", qtq.max_diff(&i));
    }

    #[test]
    fn spd_eigenvalues_positive_and_sorted() {
        let m = random_spd(30, 9);
        let e = sym_eig(&m);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-5, "not sorted: {:?}", e.values);
        }
        assert!(e.values.iter().all(|&v| v > 0.0), "{:?}", e.values);
    }

    #[test]
    fn trace_is_preserved() {
        let m = random_spd(25, 11);
        let trace: f32 = (0..25).map(|i| m.get(i, i)).sum();
        let e = sym_eig(&m);
        let lam_sum: f32 = e.values.iter().sum();
        assert!((trace - lam_sum).abs() < 1e-2 * trace.abs().max(1.0));
    }

    #[test]
    fn map_spectrum_inverse_gives_matrix_inverse() {
        let m = random_spd(12, 13);
        let e = sym_eig(&m);
        let inv = e.map_spectrum(|v| 1.0 / v);
        let prod = m.matmul(&inv);
        let i = Matrix::identity(12);
        assert!(prod.max_diff(&i) < 1e-2, "diff {}", prod.max_diff(&i));
    }

    #[test]
    fn zero_and_one_dimensional() {
        let e0 = sym_eig(&Matrix::zeros(0, 0));
        assert!(e0.values.is_empty());
        let e1 = sym_eig(&Matrix::from_vec(1, 1, vec![4.0]));
        assert!((e1.values[0] - 4.0).abs() < 1e-6);
        assert!((e1.vectors.get(0, 0).abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rotation_panels_bit_identical_to_scalar() {
        // The panel helpers vs. the original index-arithmetic loops, over
        // several sizes/pivots: identical f64 bits everywhere.
        let mut rng = Rng::new(55);
        for n in [2usize, 3, 5, 16, 33] {
            for (p, r) in [(0usize, 1usize), (0, n - 1), (n / 2, n - 1)] {
                if p >= r {
                    continue;
                }
                let base: Vec<f64> = {
                    let mut v = vec![0.0f32; n * n];
                    rng.fill_normal(&mut v);
                    v.into_iter().map(|x| x as f64).collect()
                };
                let (c, s) = (0.8299371, -0.5578463);
                let mut fast = base.clone();
                rotate_cols(&mut fast, n, p, r, c, s);
                rotate_rows(&mut fast, n, p, r, c, s);
                let mut reference = base;
                for k in 0..n {
                    let akp = reference[k * n + p];
                    let akr = reference[k * n + r];
                    reference[k * n + p] = c * akp - s * akr;
                    reference[k * n + r] = s * akp + c * akr;
                }
                for k in 0..n {
                    let apk = reference[p * n + k];
                    let ark = reference[r * n + k];
                    reference[p * n + k] = c * apk - s * ark;
                    reference[r * n + k] = s * apk + c * ark;
                }
                for (i, (x, y)) in fast.iter().zip(&reference).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "n={n} p={p} r={r} idx={i}");
                }
            }
        }
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        // 2*I has eigenvalue 2 thrice; reconstruction must still hold.
        let mut m = Matrix::identity(3);
        m.scale(2.0);
        let e = sym_eig(&m);
        for &v in &e.values {
            assert!((v - 2.0).abs() < 1e-5);
        }
        assert!(e.reconstruct().max_diff(&m) < 1e-5);
    }
}
