//! Histograms and distribution-shape diagnostics.
//!
//! §4.2 of the paper classifies quantization-error distributions as
//! *uniform* (round-to-nearest, P0.5) or *triangular* (stochastic rounding)
//! and ties that shape to accuracy preservation. This module provides the
//! histogram machinery plus goodness-of-fit scores against the uniform and
//! triangular references, which the Figure 5 harness and the rounding tests
//! use to classify measured error distributions.

/// A fixed-width histogram over `[lo, hi]`.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Samples outside `[lo, hi]`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let mut idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
        if idx >= bins {
            idx = bins - 1; // x == hi lands in the last bin
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many samples.
    pub fn add_all(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// In-range sample count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized densities (sum to 1 over in-range mass).
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Total-variation distance to a given probability mass function.
    pub fn tv_distance(&self, pmf: &[f64]) -> f64 {
        assert_eq!(pmf.len(), self.counts.len(), "pmf length");
        let d = self.densities();
        0.5 * d.iter().zip(pmf).map(|(a, b)| (a - b).abs()).sum::<f64>()
    }

    /// The uniform reference pmf over this histogram's bins.
    pub fn uniform_pmf(&self) -> Vec<f64> {
        let n = self.counts.len();
        vec![1.0 / n as f64; n]
    }

    /// The symmetric-triangular reference pmf centered on the range midpoint
    /// (the shape stochastic rounding induces on quantization error).
    pub fn triangular_pmf(&self) -> Vec<f64> {
        let n = self.counts.len();
        let mid = (n as f64 - 1.0) / 2.0;
        let mut pmf: Vec<f64> = (0..n)
            .map(|i| {
                let d = (i as f64 - mid).abs() / (mid + 0.5);
                (1.0 - d).max(0.0)
            })
            .collect();
        let s: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= s;
        }
        pmf
    }
}

/// Which reference shape a sample of quantization errors matches better.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorShape {
    /// Flat density — round-to-nearest / P0.5.
    Uniform,
    /// Peaked-at-zero density — stochastic rounding.
    Triangular,
}

/// Classifies an error sample over `[-bound, bound]` as uniform-shaped or
/// triangular-shaped by total-variation distance to each reference, and
/// returns the two distances alongside the verdict.
pub fn classify_error_shape(errors: &[f32], bound: f64, bins: usize) -> (ErrorShape, f64, f64) {
    let mut h = Histogram::new(-bound, bound, bins);
    h.add_all(errors.iter().map(|&e| e as f64));
    let d_uni = h.tv_distance(&h.uniform_pmf());
    let d_tri = h.tv_distance(&h.triangular_pmf());
    let shape = if d_tri < d_uni {
        ErrorShape::Triangular
    } else {
        ErrorShape::Uniform
    };
    (shape, d_uni, d_tri)
}

/// Simple quantile (nearest-rank) of a data sample; `q` in `[0,1]`.
pub fn quantile(xs: &[f32], q: f64) -> f32 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.0); // bin 0
        h.add(0.26); // bin 1
        h.add(0.51); // bin 2
        h.add(1.0); // clamps to bin 3
        h.add(2.0); // outlier
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.outliers(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn densities_sum_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 10);
        let mut rng = Rng::new(1);
        h.add_all((0..10_000).map(|_| rng.range_f32(-1.0, 1.0) as f64));
        let s: f64 = h.densities().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_sample_classified_uniform() {
        let mut rng = Rng::new(2);
        let errors: Vec<f32> = (0..200_000).map(|_| rng.range_f32(-0.5, 0.5)).collect();
        let (shape, d_uni, d_tri) = classify_error_shape(&errors, 0.5, 32);
        assert_eq!(shape, ErrorShape::Uniform);
        assert!(d_uni < 0.02, "d_uni {d_uni}");
        assert!(d_tri > d_uni);
    }

    #[test]
    fn triangular_sample_classified_triangular() {
        // Sum of two independent uniforms is triangular.
        let mut rng = Rng::new(3);
        let errors: Vec<f32> = (0..200_000)
            .map(|_| 0.5 * (rng.range_f32(-0.5, 0.5) + rng.range_f32(-0.5, 0.5)))
            .collect();
        let (shape, d_uni, d_tri) = classify_error_shape(&errors, 0.5, 32);
        assert_eq!(shape, ErrorShape::Triangular);
        assert!(d_tri < d_uni);
    }

    #[test]
    fn triangular_pmf_properties() {
        let h = Histogram::new(-1.0, 1.0, 9);
        let pmf = h.triangular_pmf();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Peak at middle, symmetric.
        assert!(pmf[4] > pmf[0]);
        assert!((pmf[1] - pmf[7]).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f32> = (0..101).map(|i| i as f32).collect();
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!((h.center(0) - 0.25).abs() < 1e-12);
        assert!((h.center(1) - 0.75).abs() < 1e-12);
    }
}
