//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! KAISA's "implicit inversion" alternative (§2.2 of the paper) avoids
//! eigendecomposition by solving damped linear systems directly; this
//! module provides that path. Factorization runs in `f64` for stability.

use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    n: usize,
    /// Row-major lower-triangular factor, in f64.
    l: Vec<f64>,
}

/// Error returned when the input is not positive definite (or not square).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not symmetric positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        if a.rows() != a.cols() {
            return Err(NotPositiveDefinite);
        }
        let n = a.rows();
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = 0.5 * (a.get(i, j) as f64 + a.get(j, i) as f64);
                // Panel dot over the two finished row prefixes as slices
                // (no per-step index arithmetic or bounds checks), in the
                // same strict ascending-k order as the scalar reference —
                // f64 adds do not reassociate, so the factor stays
                // bit-identical (`factor_bit_identical_to_scalar`).
                {
                    let (li, lj) = (&l[i * n..i * n + j], &l[j * n..j * n + j]);
                    for (&x, &y) in li.iter().zip(lj) {
                        sum -= x * y;
                    }
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Raw factor state `(order, row-major lower-triangular f64 data)` —
    /// the exact internal representation, exported so checkpoints can
    /// restore a cached factorization **bit-identically** instead of
    /// refactorizing (which would see a newer running-average factor and
    /// drift the resumed trajectory). Inverse of [`Cholesky::from_raw`].
    pub fn raw(&self) -> (usize, &[f64]) {
        (self.n, &self.l)
    }

    /// Rebuilds a factor from a [`Cholesky::raw`] export. Returns `None`
    /// when the data length does not match `n * n` (a corrupt or
    /// truncated checkpoint payload must not panic here).
    pub fn from_raw(n: usize, l: Vec<f64>) -> Option<Self> {
        if l.len() != n.checked_mul(n)? {
            return None;
        }
        Some(Cholesky { n, l })
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f32]) -> Vec<f32> {
        assert_eq!(b.len(), self.n, "solve_vec rhs length");
        let n = self.n;
        let mut y = vec![0.0f64; n];
        // Forward: L y = b
        for i in 0..n {
            let mut sum = b[i] as f64;
            for (k, &yk) in y.iter().enumerate().take(i) {
                sum -= self.l[i * n + k] * yk;
            }
            y[i] = sum / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[k * n + i] * xk;
            }
            x[i] = sum / self.l[i * n + i];
        }
        x.into_iter().map(|v| v as f32).collect()
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.n, "solve rhs rows");
        let bt = b.transpose();
        let mut out_t = Matrix::zeros(b.cols(), b.rows());
        for c in 0..b.cols() {
            let col = self.solve_vec(bt.row(c));
            out_t.row_mut(c).copy_from_slice(&col);
        }
        out_t.transpose()
    }

    /// The explicit inverse `A⁻¹` (use `solve` when possible).
    pub fn inverse(&self) -> Matrix {
        self.solve(&Matrix::identity(self.n))
    }

    /// log(det A) = 2 Σ log L_ii — handy for sanity checks on damping.
    pub fn log_det(&self) -> f64 {
        (0..self.n)
            .map(|i| self.l[i * self.n + i].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::new(seed);
        let b = Matrix::random_normal(n, n, &mut rng);
        let mut spd = b.t_matmul(&b);
        spd.add_diag(0.5);
        spd.symmetrize();
        spd
    }

    #[test]
    fn factor_reconstructs() {
        let a = random_spd(10, 1);
        let ch = Cholesky::new(&a).unwrap();
        // Rebuild L Lᵀ in f32 and compare.
        let n = 10;
        let mut l32 = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                l32.set(i, j, ch.l[i * n + j] as f32);
            }
        }
        let rebuilt = l32.matmul_t(&l32);
        assert!(rebuilt.max_diff(&a) < 1e-3, "diff {}", rebuilt.max_diff(&a));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = random_spd(16, 2);
        let mut rng = Rng::new(3);
        let x_true = Matrix::random_normal(16, 1, &mut rng);
        let b = a.matmul(&x_true);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve_vec(b.as_slice());
        for (i, &xi) in x.iter().enumerate() {
            assert!((xi - x_true.get(i, 0)).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = random_spd(8, 4);
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_diff(&Matrix::identity(8)) < 1e-3);
    }

    /// The pre-panel scalar factorization, retained as the bit-identity
    /// oracle.
    fn factor_scalar(a: &Matrix) -> Result<Vec<f64>, NotPositiveDefinite> {
        let n = a.rows();
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = 0.5 * (a.get(i, j) as f64 + a.get(j, i) as f64);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(l)
    }

    #[test]
    fn factor_bit_identical_to_scalar() {
        for (n, seed) in [(1usize, 11u64), (2, 12), (7, 13), (32, 14), (65, 15)] {
            let a = random_spd(n, seed);
            let ch = Cholesky::new(&a).unwrap();
            let reference = factor_scalar(&a).unwrap();
            let (_, l) = ch.raw();
            assert_eq!(l.len(), reference.len());
            for (i, (x, y)) in l.iter().zip(&reference).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n} idx={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert_eq!(Cholesky::new(&m).unwrap_err(), NotPositiveDefinite);
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert!(Cholesky::new(&m).is_err());
    }

    #[test]
    fn log_det_of_diagonal() {
        let m = Matrix::from_vec(2, 2, vec![4.0, 0.0, 0.0, 9.0]);
        let ch = Cholesky::new(&m).unwrap();
        assert!((ch.log_det() - (36.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn solve_matrix_multi_rhs() {
        let a = random_spd(6, 8);
        let mut rng = Rng::new(9);
        let x_true = Matrix::random_normal(6, 3, &mut rng);
        let b = a.matmul(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b);
        assert!(x.max_diff(&x_true) < 1e-2, "diff {}", x.max_diff(&x_true));
    }
}
