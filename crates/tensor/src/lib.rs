//! # compso-tensor
//!
//! Dense linear-algebra substrate for the COMPSO reproduction: row-major
//! `f32` matrices with cache-blocked, rayon-parallel matrix multiplication,
//! a cyclic Jacobi symmetric eigensolver (the kernel K-FAC uses to invert
//! its Kronecker factors), Cholesky factorization, hierarchical parallel
//! reductions (the CPU analogue of CUDA block reduction + warp shuffle),
//! a deterministic counter-seeded PRNG used for stochastic rounding, and
//! histogram/statistics helpers used by the rounding-error analysis.
//!
//! Everything here is written from scratch; no BLAS/LAPACK is linked. The
//! matrices K-FAC produces (layer covariance factors) are symmetric and
//! rarely larger than a few thousand rows, a regime where the blocked
//! kernels below are adequate and fully deterministic.

pub mod chol;
pub mod eigen;
pub mod matrix;
pub mod reduce;
pub mod rng;
pub mod stats;

pub use chol::Cholesky;
pub use eigen::{sym_eig, EigenDecomposition};
pub use matrix::Matrix;
pub use rng::Rng;
