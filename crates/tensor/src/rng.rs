//! Deterministic pseudo-random number generation.
//!
//! Stochastic rounding (the heart of COMPSO's quantizer) must be
//! reproducible across runs, platforms, and thread counts, so this crate
//! ships its own small PRNG rather than relying on an external crate whose
//! output stream may change between versions. The generator is
//! xoshiro256++ seeded through SplitMix64 — the standard construction
//! recommended by the xoshiro authors. `fork` derives statistically
//! independent streams, which lets each parallel compression chunk own a
//! deterministic generator regardless of rayon's scheduling order.

/// SplitMix64 step: used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographically secure; statistically strong and extremely fast,
/// which is what a compression kernel sampling one uniform per gradient
/// element needs.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Exports the full generator state — the xoshiro256++ word vector
    /// plus the cached Box-Muller spare — so a checkpointed stream can be
    /// resumed **bit-identically** mid-sequence. Inverse of
    /// [`Rng::from_state`].
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.spare_normal)
    }

    /// Rebuilds a generator from a [`Rng::state`] export. The restored
    /// generator produces exactly the sequence the exported one would
    /// have produced, including the pending Box-Muller spare.
    pub fn from_state(s: [u64; 4], spare_normal: Option<f64>) -> Rng {
        Rng { s, spare_normal }
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// Two forks of the same generator with different stream ids produce
    /// uncorrelated sequences; forking is deterministic, so parallel code
    /// that forks by chunk index is reproducible under any scheduling.
    pub fn fork(&self, stream: u64) -> Rng {
        let mut sm = self.s[0]
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(stream.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (high bits of the 64-bit state, which are the
    /// strongest bits of xoshiro++).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform_f32()
    }

    /// Uniform integer in `[0, n)` using Lemire's multiply-shift rejection.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free fast path is fine for our use (n never adversarial):
        // a single widening multiply has bias < 2^-64 * n, negligible here,
        // but we keep the standard rejection loop for exactness.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal sample via the Box-Muller transform (cached pair).
    pub fn normal_f64(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0,1] so ln(u1) is finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Standard normal as `f32`.
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }

    /// Normal with given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal_f32()
    }

    /// Fills `out` with standard-normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32]) {
        for v in out {
            *v = self.normal_f32();
        }
    }

    /// Fills `out` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.range_f32(lo, hi);
        }
    }

    /// Laplace(0, b) sample — used to synthesize gradient-like heavy-tailed
    /// data (DNN gradients are closer to Laplacian than Gaussian).
    pub fn laplace(&mut self, scale: f32) -> f32 {
        let u = self.uniform_f64() - 0.5;
        let s = if u < 0.0 { -1.0 } else { 1.0 };
        (-s * (1.0 - 2.0 * u.abs()).ln() * scale as f64) as f32
    }

    /// A Fisher-Yates shuffle of `xs`.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k <= n), in arbitrary order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // Partial Fisher-Yates over an index vector; O(n) setup is fine for
        // the sparsifier sizes we use.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = Rng::new(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let mut f1b = root.fork(0);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        let overlap = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn state_roundtrip_is_bit_identical_mid_stream() {
        let mut a = Rng::new(314);
        // Consume an odd number of normals so a Box-Muller spare is cached.
        for _ in 0..7 {
            let _ = a.normal_f64();
        }
        let (s, spare) = a.state();
        assert!(spare.is_some(), "odd normal count must cache a spare");
        let mut b = Rng::from_state(s, spare);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.normal_f64().to_bits(), b.normal_f64().to_bits());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform_f32();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f32(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f64()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(17);
        let k = 50;
        let idx = r.sample_indices(200, k);
        assert_eq!(idx.len(), k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k);
        assert!(sorted.iter().all(|&i| i < 200));
    }

    #[test]
    fn laplace_is_symmetric_heavy_tailed() {
        let mut r = Rng::new(23);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| r.laplace(1.0)).collect();
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Var of Laplace(0,1) is 2.
        let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 2.0).abs() < 0.1, "var {var}");
    }
}
