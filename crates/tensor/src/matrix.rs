//! Row-major dense `f32` matrices with the handful of operations K-FAC and
//! the DNN substrate need: blocked parallel GEMM, transpose, rank-k style
//! covariance products, elementwise arithmetic, and Kronecker products.

use crate::rng::Rng;
use rayon::prelude::*;

/// Minimum number of output elements before GEMM bothers going parallel;
/// below this the rayon dispatch overhead dominates.
const PAR_THRESHOLD: usize = 64 * 64;

/// Cache-block edge used by the GEMM micro-kernel.
const BLOCK: usize = 64;

/// Register-tile width of the GEMM microkernels: output columns per
/// accumulator block. 16 f32 lanes = four 128-bit (or two 256-bit) vector
/// registers of accumulators that live across the whole k loop, instead
/// of a load/store of the output row per k step.
///
/// Bit-identity note (DESIGN.md §12): tiling only hoists `out[i][j]` into
/// a register — each output element still accumulates the same
/// multiply-add sequence in the same k order, with the same zero-skip, so
/// the result is bit-identical to the scalar reference kernels (pinned by
/// the `*_bit_identical_to_scalar` proptests below).
const NR: usize = 16;

/// A dense row-major `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows` x `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A matrix with i.i.d. standard-normal entries.
    pub fn random_normal(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_normal(&mut m.data);
        m
    }

    /// A matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_uniform(&mut m.data, lo, hi);
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose to stay cache-friendly for large matrices.
        for rb in (0..self.rows).step_by(BLOCK) {
            for cb in (0..self.cols).step_by(BLOCK) {
                for r in rb..(rb + BLOCK).min(self.rows) {
                    for c in cb..(cb + BLOCK).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Uses an i-k-j loop order (streaming the `other` rows) with row-level
    /// rayon parallelism for larger problems.
    ///
    /// # Panics
    /// If inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        let k = self.cols;
        let a = &self.data;
        let b = &other.data;
        let kernel = |row: usize, out_row: &mut [f32]| {
            let arow = &a[row * k..row * k + k];
            // Register-tiled panels: NR output columns accumulate in
            // registers across the whole k loop. The zero-skip is
            // semantically load-bearing (it preserves a -0.0 accumulator
            // and avoids 0 × ∞), not just a flop saver.
            let mut jb = 0;
            while jb + NR <= n {
                let mut acc = [0.0f32; NR];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let bb = &b[kk * n + jb..kk * n + jb + NR];
                    for jj in 0..NR {
                        acc[jj] += aik * bb[jj];
                    }
                }
                out_row[jb..jb + NR].copy_from_slice(&acc);
                jb += NR;
            }
            // Column tail: same k-outer traversal as the scalar kernel.
            if jb < n {
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..kk * n + n];
                    for j in jb..n {
                        out_row[j] += aik * brow[j];
                    }
                }
            }
        };
        if self.rows * n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(row, out_row)| kernel(row, out_row));
        } else {
            for (row, out_row) in out.data.chunks_mut(n).enumerate() {
                kernel(row, out_row);
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose — the covariance
    /// product K-FAC computes (`aᵀa`, `gᵀg` over a batch).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul dims {}x{}ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let m = self.cols;
        let n = other.cols;
        let mut out = Matrix::zeros(m, n);
        // Accumulate rank-1 updates row by row of the common dimension.
        // Parallelize over output rows: out[i][:] = sum_r a[r][i] * b[r][:].
        let a = &self.data;
        let b = &other.data;
        let rows = self.rows;
        let kernel = |i: usize, out_row: &mut [f32]| {
            // Same register-tiled panel structure as `matmul`, with the
            // batch dimension r playing the role of k.
            let mut jb = 0;
            while jb + NR <= n {
                let mut acc = [0.0f32; NR];
                for r in 0..rows {
                    let ari = a[r * m + i];
                    if ari == 0.0 {
                        continue;
                    }
                    let bb = &b[r * n + jb..r * n + jb + NR];
                    for jj in 0..NR {
                        acc[jj] += ari * bb[jj];
                    }
                }
                out_row[jb..jb + NR].copy_from_slice(&acc);
                jb += NR;
            }
            if jb < n {
                for r in 0..rows {
                    let ari = a[r * m + i];
                    if ari == 0.0 {
                        continue;
                    }
                    let brow = &b[r * n..r * n + n];
                    for j in jb..n {
                        out_row[j] += ari * brow[j];
                    }
                }
            }
        };
        if m * n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in out.data.chunks_mut(n).enumerate() {
                kernel(i, row);
            }
        }
        out
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t dims {}x{} * {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let m = self.rows;
        let n = other.rows;
        let k = self.cols;
        let mut out = Matrix::zeros(m, n);
        let a = &self.data;
        let b = &other.data;
        let kernel = |i: usize, out_row: &mut [f32]| {
            let arow = &a[i * k..i * k + k];
            // Four output columns at a time: four *independent* dot
            // products share one pass over `arow`, each still summing in
            // strict k order — bit-identical to the one-column kernel.
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &b[j * k..j * k + k];
                let b1 = &b[(j + 1) * k..(j + 1) * k + k];
                let b2 = &b[(j + 2) * k..(j + 2) * k + k];
                let b3 = &b[(j + 3) * k..(j + 3) * k + k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kk, &av) in arow.iter().enumerate() {
                    s0 += av * b0[kk];
                    s1 += av * b1[kk];
                    s2 += av * b2[kk];
                    s3 += av * b3[kk];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
                let brow = &b[jj * k..jj * k + k];
                let mut acc = 0.0f32;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *o = acc;
            }
        };
        if m * n >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row));
        } else {
            for (i, row) in out.data.chunks_mut(n).enumerate() {
                kernel(i, row);
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "matvec dims");
        self.data
            .chunks(self.cols)
            .map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Elementwise in-place addition of `other * scale`.
    pub fn axpy(&mut self, scale: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy dims"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Running-average update `self = decay * self + (1 - decay) * other` —
    /// the exact update K-FAC applies to its covariance factors.
    pub fn ema_update(&mut self, decay: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "ema dims");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = decay * *a + (1.0 - decay) * b;
        }
    }

    /// Adds `v` to every diagonal element (Tikhonov damping `F + γI`).
    pub fn add_diag(&mut self, v: f32) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += v;
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Forces exact symmetry by averaging with the transpose. Covariance
    /// factors are symmetric in exact arithmetic; this removes f32 drift
    /// before eigendecomposition.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize needs a square matrix");
        let n = self.rows;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.data[i * n + j] + self.data[j * n + i]);
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
    }

    /// Maximum absolute asymmetry `max |A - Aᵀ|`.
    pub fn asymmetry(&self) -> f32 {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut worst = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                worst = worst.max((self.data[i * n + j] - self.data[j * n + i]).abs());
            }
        }
        worst
    }

    /// Kronecker product `self ⊗ other`. Only used on small matrices
    /// (tests comparing K-FAC's factored preconditioner against the dense
    /// Fisher approximation); output is `(r1*r2) x (c1*c2)`.
    pub fn kron(&self, other: &Matrix) -> Matrix {
        let (r1, c1) = (self.rows, self.cols);
        let (r2, c2) = (other.rows, other.cols);
        let mut out = Matrix::zeros(r1 * r2, c1 * c2);
        for i in 0..r1 {
            for j in 0..c1 {
                let a = self.get(i, j);
                if a == 0.0 {
                    continue;
                }
                for p in 0..r2 {
                    for q in 0..c2 {
                        out.set(i * r2 + p, j * c2 + q, a * other.get(p, q));
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute elementwise difference from `other`.
    pub fn max_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_diff dims"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Orthonormalizes the columns in place via modified Gram–Schmidt and
    /// returns the numerical column rank.
    ///
    /// Inner products and norms accumulate in `f64` in strict row order, so
    /// the result is a pure function of the input values — no
    /// parallelism-dependent reduction order. Columns whose residual after
    /// projection is numerically zero (degenerate inputs: duplicated or
    /// all-zero columns) are zeroed rather than replaced with arbitrary
    /// directions, which keeps `self · otherᵀ` reconstructions well-defined:
    /// a zero column contributes nothing. PowerSGD relies on both
    /// properties for cross-rank bit-identity.
    pub fn orthonormalize_columns(&mut self) -> usize {
        let (rows, cols) = (self.rows, self.cols);
        let mut rank = 0usize;
        for j in 0..cols {
            let mut orig_sq = 0.0f64;
            for r in 0..rows {
                let v = self.data[r * cols + j] as f64;
                orig_sq += v * v;
            }
            // Project out every previously accepted column, one at a time
            // (modified Gram–Schmidt: re-read column j after each update).
            for k in 0..j {
                let mut dot = 0.0f64;
                for r in 0..rows {
                    dot += self.data[r * cols + k] as f64 * self.data[r * cols + j] as f64;
                }
                if dot != 0.0 {
                    for r in 0..rows {
                        let v = self.data[r * cols + k] as f64 * dot;
                        self.data[r * cols + j] = (self.data[r * cols + j] as f64 - v) as f32;
                    }
                }
            }
            let mut norm_sq = 0.0f64;
            for r in 0..rows {
                let v = self.data[r * cols + j] as f64;
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            // Relative test: a column that lost (almost) all its mass to
            // the projections was linearly dependent up to f32 round-off.
            if norm > 1e-6 * orig_sq.sqrt() && norm > 0.0 {
                let inv = 1.0 / norm;
                for r in 0..rows {
                    self.data[r * cols + j] = (self.data[r * cols + j] as f64 * inv) as f32;
                }
                rank += 1;
            } else {
                for r in 0..rows {
                    self.data[r * cols + j] = 0.0;
                }
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f64;
                for k in 0..a.cols() {
                    acc += a.get(i, k) as f64 * b.get(k, j) as f64;
                }
                out.set(i, j, acc as f32);
            }
        }
        out
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::new(1);
        let a = Matrix::random_normal(7, 7, &mut rng);
        let i = Matrix::identity(7);
        assert!(a.matmul(&i).max_diff(&a) < 1e-6);
        assert!(i.matmul(&a).max_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = Rng::new(2);
        let a = Matrix::random_normal(13, 9, &mut rng);
        let b = Matrix::random_normal(9, 17, &mut rng);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_diff(&slow) < 1e-4, "diff {}", fast.max_diff(&slow));
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let mut rng = Rng::new(3);
        let a = Matrix::random_normal(120, 90, &mut rng);
        let b = Matrix::random_normal(90, 110, &mut rng);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_diff(&slow) < 1e-3, "diff {}", fast.max_diff(&slow));
    }

    #[test]
    fn transpose_involution_and_layout() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(4, 2), m.get(2, 4));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = Rng::new(4);
        let a = Matrix::random_normal(40, 12, &mut rng);
        let b = Matrix::random_normal(40, 15, &mut rng);
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fused.max_diff(&explicit) < 1e-4);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = Rng::new(5);
        let a = Matrix::random_normal(14, 33, &mut rng);
        let b = Matrix::random_normal(21, 33, &mut rng);
        let fused = a.matmul_t(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fused.max_diff(&explicit) < 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::new(6);
        let a = Matrix::random_normal(9, 6, &mut rng);
        let x = Matrix::random_normal(6, 1, &mut rng);
        let via_mm = a.matmul(&x);
        let via_mv = a.matvec(x.as_slice());
        for (i, &v) in via_mv.iter().enumerate() {
            assert!((via_mm.get(i, 0) - v).abs() < 1e-5);
        }
    }

    #[test]
    fn ema_update_converges_to_target() {
        let target = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
        let mut m = Matrix::zeros(4, 4);
        for _ in 0..200 {
            m.ema_update(0.9, &target);
        }
        assert!(m.max_diff(&target) < 1e-4);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert!(m.asymmetry() > 0.0);
        m.symmetrize();
        assert_eq!(m.asymmetry(), 0.0);
        assert!((m.get(0, 1) - m.get(1, 0)).abs() < 1e-7);
    }

    #[test]
    fn add_diag_damps() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diag(2.5);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 2.5);
        }
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn kron_identity_blocks() {
        let i2 = Matrix::identity(2);
        let a = Matrix::from_fn(2, 2, |r, c| (1 + r * 2 + c) as f32);
        let k = i2.kron(&a);
        assert_eq!(k.rows(), 4);
        // Upper-left block is A, off-diagonal blocks are zero.
        assert_eq!(k.get(0, 0), a.get(0, 0));
        assert_eq!(k.get(1, 1), a.get(1, 1));
        assert_eq!(k.get(0, 2), 0.0);
        assert_eq!(k.get(2, 2), a.get(0, 0));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let mut rng = Rng::new(8);
        let a = Matrix::random_normal(3, 3, &mut rng);
        let b = Matrix::random_normal(2, 2, &mut rng);
        let c = Matrix::random_normal(3, 3, &mut rng);
        let d = Matrix::random_normal(2, 2, &mut rng);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.max_diff(&rhs) < 1e-4, "diff {}", lhs.max_diff(&rhs));
    }

    #[test]
    fn fro_norm_known_value() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-6);
    }

    /// The pre-tiling scalar kernels, retained verbatim as bit-identity
    /// oracles for the register-tiled production kernels.
    mod scalar_oracle {
        use super::Matrix;

        pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let (k, n) = (a.cols(), b.cols());
            let mut out = Matrix::zeros(a.rows(), n);
            for row in 0..a.rows() {
                for kk in 0..k {
                    let aik = a.get(row, kk);
                    if aik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        let v = out.get(row, j) + aik * b.get(kk, j);
                        out.set(row, j, v);
                    }
                }
            }
            out
        }

        pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let (m, n) = (a.cols(), b.cols());
            let mut out = Matrix::zeros(m, n);
            for i in 0..m {
                for r in 0..a.rows() {
                    let ari = a.get(r, i);
                    if ari == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        let v = out.get(i, j) + ari * b.get(r, j);
                        out.set(i, j, v);
                    }
                }
            }
            out
        }

        pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
            let (m, n, k) = (a.rows(), b.rows(), a.cols());
            let mut out = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a.get(i, kk) * b.get(j, kk);
                    }
                    out.set(i, j, acc);
                }
            }
            out
        }
    }

    fn assert_bits_equal(fast: &Matrix, oracle: &Matrix, what: &str) {
        assert_eq!((fast.rows(), fast.cols()), (oracle.rows(), oracle.cols()));
        for (i, (x, y)) in fast.as_slice().iter().zip(oracle.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what} diverged at flat index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn tiled_kernels_bit_identical_on_parallel_sized_inputs() {
        // Dims chosen to cross PAR_THRESHOLD and to leave a ragged column
        // tail (not a multiple of NR or 4), with exact zeros mixed in so
        // the zero-skip path runs.
        let mut rng = Rng::new(77);
        let mut a = Matrix::random_normal(70, 130, &mut rng);
        let mut b = Matrix::random_normal(130, 101, &mut rng);
        for idx in (0..a.len()).step_by(13) {
            a.as_mut_slice()[idx] = 0.0;
        }
        for idx in (0..b.len()).step_by(7) {
            b.as_mut_slice()[idx] = 0.0;
        }
        assert_bits_equal(&a.matmul(&b), &scalar_oracle::matmul(&a, &b), "matmul");
        let c = Matrix::random_normal(130, 90, &mut rng);
        assert_bits_equal(
            &b.t_matmul(&c),
            &scalar_oracle::t_matmul(&b, &c),
            "t_matmul",
        );
        let d = Matrix::random_normal(99, 130, &mut rng);
        assert_bits_equal(
            &a.matmul_t(&d),
            &scalar_oracle::matmul_t(&a, &d),
            "matmul_t",
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        // proptest's prelude exports an `Rng` trait that shadows ours.
        use crate::rng::Rng as CRng;

        fn small_matrix(max: usize) -> impl Strategy<Value = Matrix> {
            (1..max, 1..max, any::<u64>()).prop_map(|(r, c, seed)| {
                let mut rng = CRng::new(seed);
                Matrix::random_normal(r, c, &mut rng)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn transpose_is_an_involution(m in small_matrix(20)) {
                prop_assert_eq!(m.transpose().transpose(), m);
            }

            #[test]
            fn matmul_distributes_over_addition(
                (a, b, c) in (1usize..10, 1usize..10, 1usize..10, any::<u64>()).prop_map(
                    |(m, k, n, seed)| {
                        let mut rng = CRng::new(seed);
                        (
                            Matrix::random_normal(m, k, &mut rng),
                            Matrix::random_normal(k, n, &mut rng),
                            Matrix::random_normal(k, n, &mut rng),
                        )
                    },
                )
            ) {
                // A(B + C) = AB + AC, up to f32 round-off.
                let mut bc = b.clone();
                bc.axpy(1.0, &c);
                let lhs = a.matmul(&bc);
                let mut rhs = a.matmul(&b);
                rhs.axpy(1.0, &a.matmul(&c));
                let scale = lhs.max_abs().max(1.0);
                prop_assert!(lhs.max_diff(&rhs) < 1e-4 * scale);
            }

            #[test]
            fn t_matmul_of_self_is_psd_diagonal_dominant_trace(m in small_matrix(16)) {
                // sᵀs has non-negative diagonal and trace = ||s||_F².
                let c = m.t_matmul(&m);
                for i in 0..c.rows() {
                    prop_assert!(c.get(i, i) >= -1e-6);
                }
                let trace: f64 = (0..c.rows()).map(|i| c.get(i, i) as f64).sum();
                let fro2 = (m.fro_norm() as f64).powi(2);
                prop_assert!((trace - fro2).abs() < 1e-3 * fro2.max(1.0));
            }

            /// Register-tiled vs scalar-oracle bit identity across random
            /// shapes (ragged tails, zero entries, and the sub-threshold
            /// serial path included).
            #[test]
            fn prop_gemm_kernels_bit_identical_to_scalar(
                (a, b, c, d) in (1usize..40, 1usize..40, 1usize..40, any::<u64>()).prop_map(
                    |(m, k, n, seed)| {
                        let mut rng = CRng::new(seed);
                        let mut a = Matrix::random_normal(m, k, &mut rng);
                        let b = Matrix::random_normal(k, n, &mut rng);
                        let c = Matrix::random_normal(n, k, &mut rng);
                        let d = Matrix::random_normal(m, n, &mut rng);
                        for idx in (0..a.len()).step_by(5) {
                            a.as_mut_slice()[idx] = 0.0;
                        }
                        (a, b, c, d)
                    },
                )
            ) {
                assert_bits_equal(&a.matmul(&b), &scalar_oracle::matmul(&a, &b), "matmul");
                assert_bits_equal(&a.t_matmul(&d), &scalar_oracle::t_matmul(&a, &d), "t_matmul");
                assert_bits_equal(&a.matmul_t(&c), &scalar_oracle::matmul_t(&a, &c), "matmul_t");
            }

            #[test]
            fn ema_is_a_contraction_toward_target(
                seed in any::<u64>(), decay in 0.1f32..0.99,
            ) {
                let mut rng = CRng::new(seed);
                let target = Matrix::random_normal(5, 5, &mut rng);
                let mut state = Matrix::random_normal(5, 5, &mut rng);
                let before = state.max_diff(&target);
                state.ema_update(decay, &target);
                let after = state.max_diff(&target);
                prop_assert!(after <= before * 1.0001);
            }
        }
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns() {
        let mut rng = Rng::new(7);
        let mut m = Matrix::random_normal(40, 6, &mut rng);
        let rank = m.orthonormalize_columns();
        assert_eq!(rank, 6);
        // QᵀQ should be the identity to f32 round-off.
        let gram = m.t_matmul(&m);
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram.get(i, j) - want).abs() < 1e-4,
                    "gram[{i}][{j}] = {}",
                    gram.get(i, j)
                );
            }
        }
    }

    #[test]
    fn orthonormalize_zeroes_degenerate_columns() {
        // Column 1 duplicates column 0 and column 2 is zero: rank 1, and
        // both degenerate columns come back exactly zero.
        let mut m = Matrix::from_fn(5, 3, |r, c| match c {
            0 | 1 => (r + 1) as f32,
            _ => 0.0,
        });
        let rank = m.orthonormalize_columns();
        assert_eq!(rank, 1);
        for r in 0..5 {
            assert_eq!(m.get(r, 1), 0.0);
            assert_eq!(m.get(r, 2), 0.0);
        }
        let mut norm = 0.0f64;
        for r in 0..5 {
            norm += m.get(r, 0) as f64 * m.get(r, 0) as f64;
        }
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn orthonormalize_is_deterministic() {
        let mut rng = Rng::new(99);
        let src = Matrix::random_normal(33, 4, &mut rng);
        let mut a = src.clone();
        let mut b = src.clone();
        a.orthonormalize_columns();
        b.orthonormalize_columns();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
