//! Point-in-time metric snapshots: diffable (per-step deltas) and
//! mergeable (across ranks).

use std::collections::BTreeMap;

/// Accumulated state of one span timer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Total recorded wall time, nanoseconds.
    pub total_ns: u64,
    /// Number of completed spans.
    pub count: u64,
}

impl TimerStat {
    /// Total in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Accumulated state of one log2 histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`crate::bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistStat {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A copy of every metric at one instant, keyed by metric name.
///
/// `BTreeMap` keys make iteration (and therefore JSON output) stable and
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Span timers.
    pub timers: BTreeMap<String, TimerStat>,
    /// Log2 histograms.
    pub hists: BTreeMap<String, HistStat>,
}

impl Snapshot {
    /// Element-wise `self - earlier`, saturating at zero — the per-step
    /// delta between two cumulative snapshots.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (k, &v) in &self.counters {
            let prev = earlier.counters.get(k).copied().unwrap_or(0);
            out.counters.insert(k.clone(), v.saturating_sub(prev));
        }
        for (k, t) in &self.timers {
            let prev = earlier.timers.get(k).copied().unwrap_or_default();
            out.timers.insert(
                k.clone(),
                TimerStat {
                    total_ns: t.total_ns.saturating_sub(prev.total_ns),
                    count: t.count.saturating_sub(prev.count),
                },
            );
        }
        for (k, h) in &self.hists {
            let prev = earlier.hists.get(k);
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    b.saturating_sub(prev.and_then(|p| p.buckets.get(i)).copied().unwrap_or(0))
                })
                .collect();
            out.hists.insert(
                k.clone(),
                HistStat {
                    count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                    sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                    buckets,
                },
            );
        }
        out
    }

    /// Accumulates `other` into `self` (for cross-rank aggregation).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, t) in &other.timers {
            let e = self.timers.entry(k.clone()).or_default();
            e.total_ns += t.total_ns;
            e.count += t.count;
        }
        for (k, h) in &other.hists {
            let e = self.hists.entry(k.clone()).or_default();
            e.count += h.count;
            e.sum += h.sum;
            if e.buckets.len() < h.buckets.len() {
                e.buckets.resize(h.buckets.len(), 0);
            }
            for (i, &b) in h.buckets.iter().enumerate() {
                e.buckets[i] += b;
            }
        }
    }

    /// Seconds accumulated in timer `name` (0 when absent).
    pub fn timer_seconds(&self, name: &str) -> f64 {
        self.timers.get(name).map_or(0.0, TimerStat::seconds)
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(c: u64, ns: u64) -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("c".into(), c);
        s.timers.insert(
            "t".into(),
            TimerStat {
                total_ns: ns,
                count: 1,
            },
        );
        s
    }

    #[test]
    fn delta_subtracts() {
        let a = snap(10, 100);
        let b = snap(25, 400);
        let d = b.delta_since(&a);
        assert_eq!(d.counter("c"), 15);
        assert_eq!(d.timers["t"].total_ns, 300);
    }

    #[test]
    fn delta_handles_missing_keys() {
        let d = snap(5, 50).delta_since(&Snapshot::default());
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.timer_seconds("t"), 50e-9);
    }

    #[test]
    fn merge_adds_across_ranks() {
        let mut a = snap(1, 10);
        a.hists.insert(
            "h".into(),
            HistStat {
                count: 2,
                sum: 6,
                buckets: vec![0, 2],
            },
        );
        let mut b = snap(2, 20);
        b.hists.insert(
            "h".into(),
            HistStat {
                count: 1,
                sum: 4,
                buckets: vec![1],
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.timers["t"].total_ns, 30);
        assert_eq!(a.timers["t"].count, 2);
        assert_eq!(a.hists["h"].count, 3);
        assert_eq!(a.hists["h"].buckets, vec![1, 2]);
    }
}
