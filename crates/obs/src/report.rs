//! Per-step JSON reports assembled from metric [`Snapshot`]s.
//!
//! A [`StepReport`] is the measured counterpart of the §5 performance
//! model's per-iteration breakdown: phase wall times, phase fractions over
//! the step, live compression ratio, and raw counters, rendered as a
//! single JSON object per step (one line per step makes reports
//! greppable and trivially machine-readable).

use crate::json::escape;
use crate::names;
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;

/// The sub-phases that partition [`names::KFAC_STEP`], mirroring the
/// paper's Fig. 1 taxonomy (grad sync ≙ "Others", factor ≙ "KFAC
/// Computations + Allreduce", inverse ≙ eigendecomposition, allgather ≙
/// "KFAC Allgather" incl. compression, update ≙ install).
pub const STEP_PHASES: &[&str] = &[
    names::KFAC_GRAD_SYNC,
    names::KFAC_FACTOR,
    names::KFAC_INVERSE,
    names::KFAC_ALLGATHER,
    names::KFAC_UPDATE,
];

/// Name of the synthetic phase covering step time outside the tracked
/// sub-phases (registered as [`names::KFAC_STEP_OTHER`]).
pub const PHASE_OTHER: &str = names::KFAC_STEP_OTHER;

/// The structured resilience view of a step: transport-level fault
/// handling (ARQ) and the K-FAC degradation-ladder activity, pulled out
/// of the raw counter map so chaos tooling and dashboards can reconcile
/// them against a fault-injection ledger without knowing counter names.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resilience {
    /// Transport envelopes whose CRC failed on receive (ARQ detected).
    pub crc_detected: u64,
    /// Clean-copy retransmissions the ARQ performed (drops + corruption).
    pub resends: u64,
    /// NACKs receivers sent to trigger those resends.
    pub nacks_sent: u64,
    /// Nanoseconds spent in retry backoff sleeps.
    pub backoff_ns: u64,
    /// All-gather payloads that failed their checksum frame or decode.
    pub checksum_failures: u64,
    /// Degradation-ladder repair handshakes requested (= failures).
    pub repair_requests: u64,
    /// Repairs satisfied by the rung-1 compressed resend.
    pub repair_compressed_ok: u64,
    /// Repairs satisfied by the rung-2 uncompressed resend.
    pub repair_uncompressed_ok: u64,
    /// Rung-3 layer groups served from the last-good store.
    pub fallback_last_good: u64,
    /// Rung-3 layer groups degraded to a plain-SGD step.
    pub fallback_sgd: u64,
    /// Coordinated checkpoints committed this step (informational: a
    /// clean run that checkpoints is still "quiet").
    pub ckpt_saves: u64,
    /// Encoded checkpoint bytes written this step (informational).
    pub ckpt_bytes: u64,
    /// Restore attempts that skipped a torn/corrupt snapshot and fell
    /// back to an older one. Non-zero means recovery took a degraded
    /// path, so it counts against quietness.
    pub ckpt_restore_rungs: u64,
    /// Restores that resharded a snapshot taken at a different world
    /// size across the current ownership map. The run recovered, but
    /// through an elastic path, so it counts against quietness.
    pub ckpt_restore_world_size: u64,
    /// Committed membership-view changes (shrinks + rejoins).
    pub membership_epochs: u64,
    /// Quorum-agreed view shrinks (dead peers evicted).
    pub membership_shrinks: u64,
    /// Live rejoins committed (dead peers re-admitted).
    pub membership_rejoins: u64,
    /// Ownership/schedule rebuilds forced by an epoch change.
    pub elastic_reshards: u64,
}

impl Resilience {
    /// Extracts the resilience counters from a (delta) snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        Resilience {
            crc_detected: snap.counter(names::COMM_FAULT_CRC_DETECTED),
            resends: snap.counter(names::COMM_RETRY_RESENDS),
            nacks_sent: snap.counter(names::COMM_RETRY_NACKS_SENT),
            backoff_ns: snap.counter(names::COMM_RETRY_BACKOFF_NS),
            checksum_failures: snap.counter(names::KFAC_DEGRADE_CHECKSUM_FAILURES),
            repair_requests: snap.counter(names::KFAC_DEGRADE_REPAIR_REQUESTS),
            repair_compressed_ok: snap.counter(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK),
            repair_uncompressed_ok: snap.counter(names::KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK),
            fallback_last_good: snap.counter(names::KFAC_DEGRADE_FALLBACK_LAST_GOOD),
            fallback_sgd: snap.counter(names::KFAC_DEGRADE_FALLBACK_SGD),
            ckpt_saves: snap.counter(names::CKPT_SAVES),
            ckpt_bytes: snap.counter(names::CKPT_BYTES),
            ckpt_restore_rungs: snap.counter(names::CKPT_RESTORE_RUNGS),
            ckpt_restore_world_size: snap.counter(names::CKPT_RESTORE_RUNGS_WORLD_SIZE),
            membership_epochs: snap.counter(names::COMM_MEMBERSHIP_EPOCHS),
            membership_shrinks: snap.counter(names::COMM_MEMBERSHIP_SHRINKS),
            membership_rejoins: snap.counter(names::COMM_MEMBERSHIP_REJOINS),
            elastic_reshards: snap.counter(names::KFAC_ELASTIC_RESHARDS),
        }
    }

    /// True when the step saw no transport faults, no ladder activity,
    /// and no degraded restore (the invariant a disabled fault plane
    /// must preserve). Clean checkpoint saves do **not** break
    /// quietness: `ckpt_saves`/`ckpt_bytes` are informational.
    pub fn is_quiet(&self) -> bool {
        let informational = Resilience {
            ckpt_saves: self.ckpt_saves,
            ckpt_bytes: self.ckpt_bytes,
            ..Resilience::default()
        };
        *self == informational
    }

    /// Degradation events that changed what got installed: every failure
    /// minus the repairs that fully recovered it.
    pub fn degraded_installs(&self) -> u64 {
        self.repair_requests
            .saturating_sub(self.repair_compressed_ok + self.repair_uncompressed_ok)
    }
}

/// The compressor setting the control plane held at report time —
/// descriptive state the controller publishes alongside its counters
/// (the counters say *how often* it acted; this says *what* it chose).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ActiveSetting {
    /// Compressor family name (e.g. `"compso"`, `"qsgd"`, `"powersgd"`,
    /// `"none"` during warmup).
    pub family: String,
    /// Quantization bit width, 0 when the family has none.
    pub bits: u8,
    /// Filter / error-bound threshold, 0.0 when the family has none.
    pub threshold: f64,
    /// Low-rank factor rank, 0 for non-low-rank families.
    pub rank: u8,
    /// Policy phase: `"warmup"`, `"steady"`, or `"backoff"`.
    pub phase: String,
}

/// The adaptive-compression control-plane view of a step: every `ctrl/*`
/// decision counter plus the setting held when the snapshot was taken.
/// `None` on [`StepReport`] when no controller ran (all `ctrl/*`
/// counters absent), so static-compressor reports are unchanged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlBlock {
    /// Controller decisions evaluated.
    pub decisions: u64,
    /// Decisions that changed the active setting.
    pub switches: u64,
    /// Setting changes that crossed compressor families.
    pub family_switches: u64,
    /// Steps held uncompressed in warmup.
    pub warmup_steps: u64,
    /// Warmup→compressed transitions.
    pub warmup_exits: u64,
    /// Error-feedback divergence detections.
    pub ef_divergence: u64,
    /// Backoffs to a higher-fidelity setting.
    pub backoffs: u64,
    /// Measured-vs-predicted step-wall mistrust events.
    pub model_mismatch: u64,
    /// Layer-schedule rebuilds forced by a compressor switch.
    pub schedule_invalidations: u64,
    /// Setting held at snapshot time, when the harness published it.
    pub active: Option<ActiveSetting>,
}

impl ControlBlock {
    /// Extracts the control-plane counters from a (delta) snapshot, or
    /// `None` when no `ctrl/*` activity was recorded.
    pub fn from_snapshot(snap: &Snapshot) -> Option<Self> {
        let block = ControlBlock {
            decisions: snap.counter(names::CTRL_DECISIONS),
            switches: snap.counter(names::CTRL_SWITCHES),
            family_switches: snap.counter(names::CTRL_FAMILY_SWITCHES),
            warmup_steps: snap.counter(names::CTRL_WARMUP_STEPS),
            warmup_exits: snap.counter(names::CTRL_WARMUP_EXITS),
            ef_divergence: snap.counter(names::CTRL_EF_DIVERGENCE),
            backoffs: snap.counter(names::CTRL_BACKOFFS),
            model_mismatch: snap.counter(names::CTRL_MODEL_MISMATCH),
            schedule_invalidations: snap.counter(names::CTRL_SCHEDULE_INVALIDATIONS),
            active: None,
        };
        (block != ControlBlock::default()).then_some(block)
    }
}

/// One step's measured observability report.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Step index.
    pub step: u64,
    /// Wall seconds of the whole step (the [`names::KFAC_STEP`] timer).
    pub wall_s: f64,
    /// Seconds per recorded timer.
    pub phases: BTreeMap<String, f64>,
    /// Fraction of the step per [`STEP_PHASES`] entry (plus
    /// [`PHASE_OTHER`]); sums to 1 whenever the step timer is present.
    pub fractions: BTreeMap<String, f64>,
    /// Raw counter values.
    pub counters: BTreeMap<String, u64>,
    /// Live compression ratio `core/bytes_in ÷ core/bytes_out`, when the
    /// compressor recorded traffic.
    pub ratio: Option<f64>,
    /// Achieved compression–communication overlap of the pipelined
    /// gather, when it ran: `1 − comm/pipeline/wait ÷ kfac/step/allgather`
    /// (the fraction of the gather wall NOT spent blocked on the wire),
    /// clamped to `[0, 1]`. The measured counterpart of the §4.4 model's
    /// predicted overlap.
    pub overlap_frac: Option<f64>,
    /// Structured fault-handling / degradation-ladder view of the step.
    pub resilience: Resilience,
    /// Adaptive-compression control-plane view of the step; `None` when
    /// no controller ran.
    pub control: Option<ControlBlock>,
}

impl StepReport {
    /// Builds the report for `step` from a (delta) snapshot.
    pub fn from_snapshot(step: u64, snap: &Snapshot) -> Self {
        let mut phases = BTreeMap::new();
        for (k, t) in &snap.timers {
            phases.insert(k.clone(), t.seconds());
        }
        let wall_s = snap.timer_seconds(names::KFAC_STEP);

        let mut fractions = BTreeMap::new();
        let tracked: f64 = STEP_PHASES.iter().map(|p| snap.timer_seconds(p)).sum();
        // Normalize over the full step when measured, else over the
        // tracked sub-phases alone.
        let denom = if wall_s > 0.0 {
            wall_s.max(tracked)
        } else {
            tracked
        };
        if denom > 0.0 {
            for p in STEP_PHASES {
                fractions.insert((*p).to_string(), snap.timer_seconds(p) / denom);
            }
            if wall_s > 0.0 {
                fractions.insert(PHASE_OTHER.to_string(), (denom - tracked).max(0.0) / denom);
            }
        }

        let bytes_in = snap.counter(names::CORE_BYTES_IN);
        let bytes_out = snap.counter(names::CORE_BYTES_OUT);
        let ratio = (bytes_out > 0).then(|| bytes_in as f64 / bytes_out as f64);

        let gather_s = snap.timer_seconds(names::KFAC_ALLGATHER);
        let overlap_frac = (snap.timers.contains_key(names::COMM_PIPELINE_WAIT) && gather_s > 0.0)
            .then(|| {
                let wait_s = snap.timer_seconds(names::COMM_PIPELINE_WAIT);
                (1.0 - wait_s / gather_s).clamp(0.0, 1.0)
            });

        StepReport {
            step,
            wall_s,
            phases,
            fractions,
            counters: snap.counters.clone(),
            ratio,
            overlap_frac,
            resilience: Resilience::from_snapshot(snap),
            control: ControlBlock::from_snapshot(snap),
        }
    }

    /// Sum of the reported fractions (≈1 for a well-formed step report).
    pub fn fraction_sum(&self) -> f64 {
        self.fractions.values().sum()
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"step\":{}", self.step));
        out.push_str(&format!(",\"wall_s\":{}", fmt_f64(self.wall_s)));
        out.push_str(",\"phases\":{");
        push_f64_map(&mut out, &self.phases);
        out.push_str("},\"fractions\":{");
        push_f64_map(&mut out, &self.fractions);
        out.push_str("},\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        out.push('}');
        match self.ratio {
            Some(r) => out.push_str(&format!(",\"ratio\":{}", fmt_f64(r))),
            None => out.push_str(",\"ratio\":null"),
        }
        match self.overlap_frac {
            Some(v) => out.push_str(&format!(",\"overlap_frac\":{}", fmt_f64(v))),
            None => out.push_str(",\"overlap_frac\":null"),
        }
        let rz = &self.resilience;
        out.push_str(&format!(
            ",\"resilience\":{{\"crc_detected\":{},\"resends\":{},\"nacks_sent\":{},\
             \"backoff_ns\":{},\"checksum_failures\":{},\"repair_requests\":{},\
             \"repair_compressed_ok\":{},\"repair_uncompressed_ok\":{},\
             \"fallback_last_good\":{},\"fallback_sgd\":{},\
             \"ckpt_saves\":{},\"ckpt_bytes\":{},\"ckpt_restore_rungs\":{},\
             \"ckpt_restore_world_size\":{},\"membership_epochs\":{},\
             \"membership_shrinks\":{},\"membership_rejoins\":{},\
             \"elastic_reshards\":{}}}",
            rz.crc_detected,
            rz.resends,
            rz.nacks_sent,
            rz.backoff_ns,
            rz.checksum_failures,
            rz.repair_requests,
            rz.repair_compressed_ok,
            rz.repair_uncompressed_ok,
            rz.fallback_last_good,
            rz.fallback_sgd,
            rz.ckpt_saves,
            rz.ckpt_bytes,
            rz.ckpt_restore_rungs,
            rz.ckpt_restore_world_size,
            rz.membership_epochs,
            rz.membership_shrinks,
            rz.membership_rejoins,
            rz.elastic_reshards,
        ));
        match &self.control {
            None => out.push_str(",\"control\":null"),
            Some(c) => {
                out.push_str(&format!(
                    ",\"control\":{{\"decisions\":{},\"switches\":{},\
                     \"family_switches\":{},\"warmup_steps\":{},\
                     \"warmup_exits\":{},\"ef_divergence\":{},\"backoffs\":{},\
                     \"model_mismatch\":{},\"schedule_invalidations\":{},\
                     \"active\":",
                    c.decisions,
                    c.switches,
                    c.family_switches,
                    c.warmup_steps,
                    c.warmup_exits,
                    c.ef_divergence,
                    c.backoffs,
                    c.model_mismatch,
                    c.schedule_invalidations,
                ));
                match &c.active {
                    None => out.push_str("null"),
                    Some(a) => out.push_str(&format!(
                        "{{\"family\":\"{}\",\"bits\":{},\"threshold\":{},\
                         \"rank\":{},\"phase\":\"{}\"}}",
                        escape(&a.family),
                        a.bits,
                        fmt_f64(a.threshold),
                        a.rank,
                        escape(&a.phase),
                    )),
                }
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

fn push_f64_map(out: &mut String, map: &BTreeMap<String, f64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", escape(k), fmt_f64(*v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::snapshot::TimerStat;
    use crate::Recorder;

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add_time_ns(names::KFAC_GRAD_SYNC, 100_000);
        rec.add_time_ns(names::KFAC_FACTOR, 300_000);
        rec.add_time_ns(names::KFAC_INVERSE, 200_000);
        rec.add_time_ns(names::KFAC_ALLGATHER, 250_000);
        rec.add_time_ns(names::KFAC_UPDATE, 100_000);
        rec.add(names::CORE_BYTES_IN, 4000);
        rec.add(names::CORE_BYTES_OUT, 200);
        rec.snapshot()
    }

    #[test]
    fn fractions_partition_the_step() {
        let report = StepReport::from_snapshot(3, &sample_snapshot());
        assert_eq!(report.step, 3);
        assert!((report.wall_s - 1e-3).abs() < 1e-12);
        assert!(
            (report.fraction_sum() - 1.0).abs() < 1e-9,
            "{}",
            report.fraction_sum()
        );
        assert!((report.fractions[names::KFAC_FACTOR] - 0.3).abs() < 1e-9);
        assert!((report.fractions[PHASE_OTHER] - 0.05).abs() < 1e-9);
        assert_eq!(report.ratio, Some(20.0));
    }

    #[test]
    fn json_is_well_formed() {
        let report = StepReport::from_snapshot(0, &sample_snapshot());
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"ratio\":2e1"), "{doc}");
        assert!(doc.contains(&format!("\"{}\"", names::KFAC_FACTOR)));
    }

    #[test]
    fn resilience_section_extracts_and_serializes() {
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add(names::COMM_FAULT_CRC_DETECTED, 3);
        rec.add(names::COMM_RETRY_RESENDS, 5);
        rec.add(names::KFAC_DEGRADE_CHECKSUM_FAILURES, 2);
        rec.add(names::KFAC_DEGRADE_REPAIR_REQUESTS, 2);
        rec.add(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK, 1);
        rec.add(names::KFAC_DEGRADE_FALLBACK_SGD, 1);
        let report = StepReport::from_snapshot(0, &rec.snapshot());
        let rz = report.resilience;
        assert!(!rz.is_quiet());
        assert_eq!(rz.crc_detected, 3);
        assert_eq!(rz.resends, 5);
        assert_eq!(rz.checksum_failures, 2);
        assert_eq!(rz.repair_compressed_ok, 1);
        assert_eq!(rz.degraded_installs(), 1);
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"resilience\":{\"crc_detected\":3"), "{doc}");
        assert!(doc.contains("\"fallback_sgd\":1"), "{doc}");
    }

    #[test]
    fn ckpt_saves_stay_quiet_but_restore_rungs_do_not() {
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add(names::CKPT_SAVES, 1);
        rec.add(names::CKPT_BYTES, 4096);
        let report = StepReport::from_snapshot(0, &rec.snapshot());
        assert_eq!(report.resilience.ckpt_saves, 1);
        assert_eq!(report.resilience.ckpt_bytes, 4096);
        // A clean run that happens to checkpoint is still quiet...
        assert!(report.resilience.is_quiet());
        // ...but a restore that had to skip a torn snapshot is not.
        rec.add(names::CKPT_RESTORE_RUNGS, 1);
        let report = StepReport::from_snapshot(1, &rec.snapshot());
        assert!(!report.resilience.is_quiet());
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"ckpt_restore_rungs\":1"), "{doc}");
    }

    #[test]
    fn membership_activity_counts_against_quietness() {
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add(names::COMM_MEMBERSHIP_EPOCHS, 2);
        rec.add(names::COMM_MEMBERSHIP_SHRINKS, 1);
        rec.add(names::COMM_MEMBERSHIP_REJOINS, 1);
        rec.add(names::KFAC_ELASTIC_RESHARDS, 2);
        rec.add(names::CKPT_RESTORE_RUNGS_WORLD_SIZE, 1);
        let report = StepReport::from_snapshot(0, &rec.snapshot());
        let rz = report.resilience;
        assert!(!rz.is_quiet());
        assert_eq!(rz.membership_epochs, 2);
        assert_eq!(rz.membership_shrinks, 1);
        assert_eq!(rz.membership_rejoins, 1);
        assert_eq!(rz.elastic_reshards, 2);
        assert_eq!(rz.ckpt_restore_world_size, 1);
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"membership_epochs\":2"), "{doc}");
        assert!(doc.contains("\"elastic_reshards\":2"), "{doc}");
        assert!(doc.contains("\"ckpt_restore_world_size\":1"), "{doc}");
    }

    #[test]
    fn control_block_absent_without_controller_activity() {
        let report = StepReport::from_snapshot(0, &sample_snapshot());
        assert_eq!(report.control, None);
        assert!(report.to_json().contains("\"control\":null"));
    }

    #[test]
    fn control_block_extracts_and_serializes() {
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add(names::CTRL_DECISIONS, 10);
        rec.add(names::CTRL_SWITCHES, 2);
        rec.add(names::CTRL_FAMILY_SWITCHES, 1);
        rec.add(names::CTRL_WARMUP_STEPS, 5);
        rec.add(names::CTRL_WARMUP_EXITS, 1);
        rec.add(names::CTRL_EF_DIVERGENCE, 1);
        rec.add(names::CTRL_BACKOFFS, 1);
        rec.add(names::CTRL_SCHEDULE_INVALIDATIONS, 2);
        let mut report = StepReport::from_snapshot(0, &rec.snapshot());
        let c = report.control.as_mut().expect("controller ran");
        assert_eq!(c.decisions, 10);
        assert_eq!(c.switches, 2);
        assert_eq!(c.family_switches, 1);
        assert_eq!(c.warmup_exits, 1);
        assert_eq!(c.backoffs, 1);
        assert_eq!(c.schedule_invalidations, 2);
        c.active = Some(ActiveSetting {
            family: "powersgd".to_string(),
            bits: 0,
            threshold: 0.0,
            rank: 4,
            phase: "steady".to_string(),
        });
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"control\":{\"decisions\":10"), "{doc}");
        assert!(doc.contains("\"family\":\"powersgd\""), "{doc}");
        assert!(doc.contains("\"phase\":\"steady\""), "{doc}");
    }

    #[test]
    fn quiet_step_reports_quiet_resilience() {
        let report = StepReport::from_snapshot(1, &sample_snapshot());
        assert!(report.resilience.is_quiet());
        assert_eq!(report.resilience.degraded_installs(), 0);
        assert!(report
            .to_json()
            .contains("\"resilience\":{\"crc_detected\":0"));
    }

    #[test]
    fn empty_snapshot_yields_empty_but_valid_report() {
        let report = StepReport::from_snapshot(9, &Snapshot::default());
        assert_eq!(report.wall_s, 0.0);
        assert!(report.fractions.is_empty());
        assert_eq!(report.ratio, None);
        assert_eq!(report.overlap_frac, None);
        validate(&report.to_json()).expect("valid JSON");
    }

    #[test]
    fn overlap_frac_measures_hidden_gather_time() {
        // 250 µs gather wall with 50 µs blocked on the wire → 80% of the
        // gather was overlapped with compression/decode.
        let rec = Recorder::enabled();
        rec.add_time_ns(names::KFAC_STEP, 1_000_000);
        rec.add_time_ns(names::KFAC_ALLGATHER, 250_000);
        rec.add_time_ns(names::COMM_PIPELINE_WAIT, 50_000);
        let report = StepReport::from_snapshot(0, &rec.snapshot());
        let f = report.overlap_frac.expect("pipeline ran");
        assert!((f - 0.8).abs() < 1e-9, "{f}");
        let doc = report.to_json();
        validate(&doc).unwrap_or_else(|(pos, msg)| panic!("{msg} at {pos} in {doc}"));
        assert!(doc.contains("\"overlap_frac\":8e-1"), "{doc}");
        // Wait exceeding the gather span (clock skew) clamps to 0.
        rec.reset();
        rec.add_time_ns(names::KFAC_ALLGATHER, 10_000);
        rec.add_time_ns(names::COMM_PIPELINE_WAIT, 20_000);
        let report = StepReport::from_snapshot(1, &rec.snapshot());
        assert_eq!(report.overlap_frac, Some(0.0));
    }

    #[test]
    fn overlap_frac_absent_without_pipeline_timers() {
        // The serial compress-then-gather path never records a pipeline
        // wait, so the report must not invent an overlap number.
        let report = StepReport::from_snapshot(0, &sample_snapshot());
        assert_eq!(report.overlap_frac, None);
        assert!(report.to_json().contains("\"overlap_frac\":null"));
    }

    #[test]
    fn missing_step_timer_normalizes_over_subphases() {
        let mut snap = Snapshot::default();
        snap.timers.insert(
            names::KFAC_FACTOR.to_string(),
            TimerStat {
                total_ns: 300,
                count: 1,
            },
        );
        snap.timers.insert(
            names::KFAC_UPDATE.to_string(),
            TimerStat {
                total_ns: 100,
                count: 1,
            },
        );
        let report = StepReport::from_snapshot(0, &snap);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        assert!((report.fractions[names::KFAC_FACTOR] - 0.75).abs() < 1e-9);
        assert!(!report.fractions.contains_key(PHASE_OTHER));
    }

    #[test]
    fn clock_skew_other_clamps_to_zero() {
        // Sub-phases can sum past the step timer by a few ns of guard
        // overhead; "other" must clamp rather than go negative.
        let mut snap = Snapshot::default();
        snap.timers.insert(
            names::KFAC_STEP.to_string(),
            TimerStat {
                total_ns: 90,
                count: 1,
            },
        );
        snap.timers.insert(
            names::KFAC_FACTOR.to_string(),
            TimerStat {
                total_ns: 100,
                count: 1,
            },
        );
        let report = StepReport::from_snapshot(0, &snap);
        assert!(report.fractions[PHASE_OTHER] >= 0.0);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
    }
}
