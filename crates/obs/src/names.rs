//! Canonical metric and collective-label names used across the
//! instrumented crates, so reports, dashboards, and tests agree on
//! spelling.
//!
//! This module is a **registry**, not just a bag of constants: every
//! counter/span/histogram name and every collective label that crosses a
//! crate boundary must be declared here and listed in [`ALL`].
//! `compso-lint`'s `counter-registry` rule enforces both directions —
//! prod code may not pass bare string literals to a `Recorder` or
//! `recv_labeled`, and any slash-namespaced name literal anywhere in the
//! workspace (tests included) must match a registered constant, so a
//! typo in a test pin is caught at lint time instead of silently
//! asserting against a counter that never fires.

/// `compso-core`: per-layer filter pass.
pub const CORE_FILTER: &str = "core/filter";
/// `compso-core`: per-layer quantize pass.
pub const CORE_QUANTIZE: &str = "core/quantize";
/// `compso-core`: lossless encode of aggregated streams.
pub const CORE_ENCODE: &str = "core/encode";
/// `compso-core`: whole chunked-parallel kernel sweep (filter +
/// quantize + serialize + block encode) of one multi-layer group.
pub const CORE_CHUNKED_COMPRESS: &str = "core/chunked_compress";
/// `compso-core`: lossless decode + dequantize + unfilter.
pub const CORE_DECODE: &str = "core/decode";
/// `compso-core`: raw f32 bytes entering the compressor.
pub const CORE_BYTES_IN: &str = "core/bytes_in";
/// `compso-core`: wire bytes leaving the compressor.
pub const CORE_BYTES_OUT: &str = "core/bytes_out";
/// `compso-core`: wire bytes entering the decompressor.
pub const CORE_DECODE_BYTES_IN: &str = "core/decode_bytes_in";

/// `compso-comm`: ring sum all-reduce wall time.
pub const COMM_ALLREDUCE: &str = "comm/allreduce_sum";
/// `compso-comm`: ring reduce-scatter wall time.
pub const COMM_REDUCE_SCATTER: &str = "comm/reduce_scatter_sum";
/// `compso-comm`: variable-size ring all-gather wall time.
pub const COMM_ALLGATHER_VAR: &str = "comm/allgather_var";
/// `compso-comm`: fixed-size ring all-gather wall time.
pub const COMM_ALLGATHER: &str = "comm/allgather";
/// `compso-comm`: compressed ring all-reduce wall time.
pub const COMM_COMPRESSED_ALLREDUCE: &str = "comm/compressed_allreduce_mean";
/// `compso-comm`: total bytes this rank put on the wire.
pub const COMM_BYTES_SENT: &str = "comm/bytes_sent";
/// `compso-comm`: per-message wire sizes (log2 histogram).
pub const COMM_MSG_BYTES: &str = "comm/msg_bytes";
/// `compso-comm`: number of `allreduce_sum`/`allreduce_mean`
/// collective invocations (the bucketing win shows up here: one call
/// per step for gradient sync instead of one per layer).
pub const COMM_ALLREDUCE_CALLS: &str = "comm/allreduce_calls";
/// `compso-comm`: number of variable-size all-gather invocations.
pub const COMM_ALLGATHER_VAR_CALLS: &str = "comm/allgather_var_calls";
/// `compso-comm`: pipelined (group-streamed) ring all-gather wall time;
/// also the collective label its receives carry in `CommError`s.
pub const COMM_PIPELINED_ALLGATHER: &str = "comm/pipelined_allgather";
/// `compso-comm`: number of pipelined all-gather invocations (the
/// pipelined counterpart of `comm/allgather_var_calls`).
pub const COMM_PIPELINED_ALLGATHER_CALLS: &str = "comm/pipelined_allgather_calls";
/// `compso-comm`: pipeline slots executed across all pipelined
/// all-gathers (max aggregation-group count over the ranks, per call).
pub const COMM_PIPELINE_STAGES: &str = "comm/pipeline_stages";
/// `compso-comm`: time spent inside the producer callback (rank-local
/// compression of the next group) during a pipelined all-gather.
pub const COMM_PIPELINE_PRODUCE: &str = "comm/pipeline/produce";
/// `compso-comm`: time spent inside the delivery callback (streaming
/// per-group decode) during a pipelined all-gather.
pub const COMM_PIPELINE_DELIVER: &str = "comm/pipeline/deliver";
/// `compso-comm`: time spent blocked on ring receives during a
/// pipelined all-gather — the *exposed* (un-overlapped) communication.
/// `1 − wait/allgather-span` is the achieved overlap fraction.
pub const COMM_PIPELINE_WAIT: &str = "comm/pipeline/wait";

/// `compso-comm`: label of a bare point-to-point receive
/// ([`Communicator::recv`]) in `CommError`s.
///
/// [`Communicator::recv`]: ../compso_comm/group/struct.Communicator.html#method.recv
pub const COMM_RECV: &str = "comm/recv";
/// `compso-comm`: label of the group barrier in `CommError`s (a barrier
/// timeout names the straggler under this collective).
pub const COMM_BARRIER: &str = "comm/barrier";
/// `compso-comm`: label of the flat f32 broadcast in `CommError`s.
pub const COMM_BROADCAST: &str = "comm/broadcast";
/// `compso-comm`: label of the flat byte broadcast in `CommError`s.
pub const COMM_BROADCAST_BYTES: &str = "comm/broadcast_bytes";

/// `compso-comm`: envelope-CRC failures detected at a receiver (each
/// one triggers an immediate NACK; reconciles 1:1 with the fault
/// plane's `corrupted_wire` ledger).
pub const COMM_FAULT_CRC_DETECTED: &str = "comm/fault/crc_detected";
/// `compso-comm`: data-message retransmissions performed by senders
/// in response to NACKs (`== dropped + corrupted_wire` injections
/// when no spurious timeouts fire).
pub const COMM_RETRY_RESENDS: &str = "comm/retry/resends";
/// `compso-comm`: NACKs sent by receivers (immediate on CRC failure,
/// deadline-based for silent drops).
pub const COMM_RETRY_NACKS_SENT: &str = "comm/retry/nacks_sent";
/// `compso-comm`: exponential-backoff waits between timeout NACKs,
/// in nanoseconds (log2 histogram).
pub const COMM_RETRY_BACKOFF_NS: &str = "comm/retry/backoff_ns";
/// `compso-kfac`: tiny always-on repair status exchange after the
/// gradient all-gather (kept separate from `comm/allgather_var` so
/// call-count invariants on the main collective stay exact).
pub const COMM_ALLGATHER_REPAIR: &str = "comm/allgather_repair";

/// `compso-comm`: label of the elastic-membership protocol receives
/// (shrink proposals, rejoin requests, welcomes) in `CommError`s.
pub const COMM_MEMBERSHIP: &str = "comm/membership";
/// `compso-comm`: committed membership-view changes (every epoch bump:
/// shrinks *and* rejoins). Zero in a fixed-membership run.
pub const COMM_MEMBERSHIP_EPOCHS: &str = "comm/membership/epochs";
/// `compso-comm`: quorum-agreed view shrinks this rank committed
/// (each one evicts at least one dead peer).
pub const COMM_MEMBERSHIP_SHRINKS: &str = "comm/membership/shrinks";
/// `compso-comm`: live rejoins this rank committed (a previously dead
/// rank re-admitted at an epoch boundary).
pub const COMM_MEMBERSHIP_REJOINS: &str = "comm/membership/rejoins";
/// `compso-kfac`: label of the rejoin catch-up delta all-gather (kept
/// separate from `comm/allgather_var` so call-count invariants on the
/// main collective stay exact).
pub const COMM_ALLGATHER_REJOIN: &str = "comm/allgather_rejoin";

/// `compso-kfac`: checksum/decode failures observed on gathered peer
/// payloads (`== corrupted_payload injections × (ranks − 1)`).
pub const KFAC_DEGRADE_CHECKSUM_FAILURES: &str = "kfac/degrade/checksum_failures";
/// `compso-kfac`: repair requests issued to payload origins (rung 1).
pub const KFAC_DEGRADE_REPAIR_REQUESTS: &str = "kfac/degrade/repair_requests";
/// `compso-kfac`: repairs satisfied by a compressed resend (rung 1).
pub const KFAC_DEGRADE_REPAIR_COMPRESSED_OK: &str = "kfac/degrade/repair_compressed_ok";
/// `compso-kfac`: repairs satisfied by an uncompressed resend (rung 2).
pub const KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK: &str = "kfac/degrade/repair_uncompressed_ok";
/// `compso-kfac`: layer groups that fell back to the last good
/// preconditioned gradient (rung 3a).
pub const KFAC_DEGRADE_FALLBACK_LAST_GOOD: &str = "kfac/degrade/fallback_last_good";
/// `compso-kfac`: layer groups that fell back to the plain averaged
/// gradient (an SGD-style step for those layers; rung 3b).
pub const KFAC_DEGRADE_FALLBACK_SGD: &str = "kfac/degrade/fallback_sgd";

/// `compso-kfac`: label of the degradation ladder's rung-1/rung-2
/// point-to-point repair payload receives in `CommError`s.
pub const KFAC_REPAIR: &str = "kfac/repair";
/// `compso-kfac`: label of the repair-handshake status acknowledgement
/// receives in `CommError`s.
pub const KFAC_REPAIR_STATUS: &str = "kfac/repair_status";

/// `compso-kfac`: whole `DistKfac::step`.
pub const KFAC_STEP: &str = "kfac/step";
/// `compso-kfac`: data-parallel gradient all-reduce.
pub const KFAC_GRAD_SYNC: &str = "kfac/step/grad_sync";
/// `compso-kfac`: fusion-buffer flatten + scatter-back around the
/// single bucketed gradient all-reduce (nested inside `grad_sync`).
pub const KFAC_BUCKET: &str = "kfac/step/grad_sync/bucket";
/// `compso-kfac`: parallel decode of the N−1 peer all-gather payloads
/// (nested inside `update`).
pub const KFAC_PEER_DECODE: &str = "kfac/step/update/peer_decode";
/// `compso-kfac`: covariance factor compute + all-reduce (Fig. 1
/// "KFAC Computations" + "Factor Allreduce").
pub const KFAC_FACTOR: &str = "kfac/step/factor";
/// `compso-kfac`: eigendecomposition / preconditioning of owned layers
/// (Fig. 1 "inverse").
pub const KFAC_INVERSE: &str = "kfac/step/inverse";
/// `compso-kfac`: compress + all-gather of preconditioned gradients.
pub const KFAC_ALLGATHER: &str = "kfac/step/allgather";
/// `compso-kfac`: decode + install of gathered gradients.
pub const KFAC_UPDATE: &str = "kfac/step/update";
/// Synthetic report phase covering step time outside the tracked
/// sub-phases (computed by `StepReport`, never recorded directly).
pub const KFAC_STEP_OTHER: &str = "kfac/step/other";
/// Synthetic report metric: achieved compression–communication overlap
/// fraction of the all-gather phase, `1 − pipeline-wait/allgather-span`
/// (computed by `StepReport` from the pipeline timers, never recorded
/// directly; absent on the compress-then-gather path).
pub const KFAC_OVERLAP_FRAC: &str = "kfac/overlap_frac";
/// `compso-kfac`: bytes moved by the single fused factor all-reduce
/// (step 3's `a_cov`/`g_cov` bucket; 2·layers collectives fused into 1).
pub const KFAC_FACTOR_FUSED_BYTES: &str = "kfac/factor_fused_bytes";
/// `compso-kfac`: ownership-map + schedule rebuilds forced by a
/// membership epoch change (the dead rank's aggregation groups are
/// re-owned across the survivors). Zero in a fixed-membership run.
pub const KFAC_ELASTIC_RESHARDS: &str = "kfac/elastic/reshards";

/// `compso-kfac` checkpointing: whole coordinated save (encode +
/// write + fsync + metadata all-gather + commit).
pub const CKPT_SAVE: &str = "ckpt/save";
/// `compso-kfac` checkpointing: whole coordinated restore (read +
/// decode + redistribution + import).
pub const CKPT_LOAD: &str = "ckpt/load";
/// `compso-kfac` checkpointing: committed snapshots this rank
/// participated in.
pub const CKPT_SAVES: &str = "ckpt/saves";
/// `compso-kfac` checkpointing: encoded bytes this rank wrote to
/// its payload files (manifest bytes count on rank 0).
pub const CKPT_BYTES: &str = "ckpt/bytes";
/// `compso-kfac` checkpointing: raw (pre-compression) tensor bytes
/// behind `ckpt/bytes` — the ratio of the two is the checkpoint
/// compression ratio.
pub const CKPT_RAW_BYTES: &str = "ckpt/raw_bytes";
/// `compso-kfac` checkpointing: restore attempts that had to skip a
/// snapshot (missing/torn/corrupt manifest or payload) and fall
/// back to an older one. Zero on a clean restore.
pub const CKPT_RESTORE_RUNGS: &str = "ckpt/restore_rungs";
/// `compso-kfac` checkpointing: restores that loaded a snapshot taken
/// at a *different* world size and resharded the owner-split factor
/// blobs across the new ownership map (the `reason=world_size` rung —
/// observable, no longer a silent skip). Zero when sizes match.
pub const CKPT_RESTORE_RUNGS_WORLD_SIZE: &str = "ckpt/restore_rungs_world_size";

/// `compso-ctrl`: one controller decision evaluated (every observed
/// step, whether or not the setting changed).
pub const CTRL_DECISIONS: &str = "ctrl/decisions";
/// `compso-ctrl`: wall time of one `Controller::observe` evaluation —
/// the control plane's overhead, gated by `scripts/bench_check.sh` at
/// <1% of the step wall.
pub const CTRL_DECIDE: &str = "ctrl/decide";
/// `compso-ctrl`: decisions that changed the active setting in any way
/// (family, bits, threshold, rank, or chunking).
pub const CTRL_SWITCHES: &str = "ctrl/switches";
/// `compso-ctrl`: setting changes that crossed compressor families —
/// the measured CR×throughput product fell below the model's estimate
/// for a structurally different encoder.
pub const CTRL_FAMILY_SWITCHES: &str = "ctrl/family_switches";
/// `compso-ctrl`: steps held uncompressed in the warmup phase.
pub const CTRL_WARMUP_STEPS: &str = "ctrl/warmup_steps";
/// `compso-ctrl`: warmup→compressed transitions (1 per run unless the
/// controller is reset).
pub const CTRL_WARMUP_EXITS: &str = "ctrl/warmup_exits";
/// `compso-ctrl`: error-feedback divergence detections (the measured
/// residual/compression-error signal crossed the configured ceiling).
pub const CTRL_EF_DIVERGENCE: &str = "ctrl/ef_divergence";
/// `compso-ctrl`: backoffs to a higher-fidelity setting triggered by
/// divergence detections.
pub const CTRL_BACKOFFS: &str = "ctrl/backoffs";
/// `compso-ctrl`: steps where the measured step wall exceeded the
/// IterationModel prediction by the configured mistrust factor.
pub const CTRL_MODEL_MISMATCH: &str = "ctrl/model_mismatch";
/// `compso-kfac`: cached layer-schedule rebuilds forced by a
/// controller-driven compressor switch (chunk geometry changes with
/// the family). Zero under a static compressor.
pub const CTRL_SCHEDULE_INVALIDATIONS: &str = "ctrl/schedule_invalidations";

/// Every registered name. `compso-lint` parses this file to build the
/// allowed set; keep the array in sync with the constants above (the
/// `registry_lists_every_constant` test cross-checks it against the
/// constants this module exports).
pub const ALL: &[&str] = &[
    CORE_FILTER,
    CORE_QUANTIZE,
    CORE_ENCODE,
    CORE_CHUNKED_COMPRESS,
    CORE_DECODE,
    CORE_BYTES_IN,
    CORE_BYTES_OUT,
    CORE_DECODE_BYTES_IN,
    COMM_ALLREDUCE,
    COMM_REDUCE_SCATTER,
    COMM_ALLGATHER_VAR,
    COMM_ALLGATHER,
    COMM_COMPRESSED_ALLREDUCE,
    COMM_BYTES_SENT,
    COMM_MSG_BYTES,
    COMM_ALLREDUCE_CALLS,
    COMM_ALLGATHER_VAR_CALLS,
    COMM_PIPELINED_ALLGATHER,
    COMM_PIPELINED_ALLGATHER_CALLS,
    COMM_PIPELINE_STAGES,
    COMM_PIPELINE_PRODUCE,
    COMM_PIPELINE_DELIVER,
    COMM_PIPELINE_WAIT,
    COMM_RECV,
    COMM_BARRIER,
    COMM_BROADCAST,
    COMM_BROADCAST_BYTES,
    COMM_FAULT_CRC_DETECTED,
    COMM_RETRY_RESENDS,
    COMM_RETRY_NACKS_SENT,
    COMM_RETRY_BACKOFF_NS,
    COMM_ALLGATHER_REPAIR,
    COMM_MEMBERSHIP,
    COMM_MEMBERSHIP_EPOCHS,
    COMM_MEMBERSHIP_SHRINKS,
    COMM_MEMBERSHIP_REJOINS,
    COMM_ALLGATHER_REJOIN,
    KFAC_DEGRADE_CHECKSUM_FAILURES,
    KFAC_DEGRADE_REPAIR_REQUESTS,
    KFAC_DEGRADE_REPAIR_COMPRESSED_OK,
    KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK,
    KFAC_DEGRADE_FALLBACK_LAST_GOOD,
    KFAC_DEGRADE_FALLBACK_SGD,
    KFAC_REPAIR,
    KFAC_REPAIR_STATUS,
    KFAC_STEP,
    KFAC_GRAD_SYNC,
    KFAC_BUCKET,
    KFAC_PEER_DECODE,
    KFAC_FACTOR,
    KFAC_INVERSE,
    KFAC_ALLGATHER,
    KFAC_UPDATE,
    KFAC_STEP_OTHER,
    KFAC_OVERLAP_FRAC,
    KFAC_FACTOR_FUSED_BYTES,
    KFAC_ELASTIC_RESHARDS,
    CKPT_SAVE,
    CKPT_LOAD,
    CKPT_SAVES,
    CKPT_BYTES,
    CKPT_RAW_BYTES,
    CKPT_RESTORE_RUNGS,
    CKPT_RESTORE_RUNGS_WORLD_SIZE,
    CTRL_DECISIONS,
    CTRL_DECIDE,
    CTRL_SWITCHES,
    CTRL_FAMILY_SWITCHES,
    CTRL_WARMUP_STEPS,
    CTRL_WARMUP_EXITS,
    CTRL_EF_DIVERGENCE,
    CTRL_BACKOFFS,
    CTRL_MODEL_MISMATCH,
    CTRL_SCHEDULE_INVALIDATIONS,
];

/// Whether `name` is a registered metric/label name.
pub fn is_registered(name: &str) -> bool {
    ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a, b, "duplicate registered name");
            }
        }
    }

    #[test]
    fn names_are_slash_namespaced_lowercase() {
        for name in ALL {
            assert!(
                !name.is_empty() && name.contains('/'),
                "{name}: registered names are namespace/segment"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/' || c == '_'),
                "{name}: registered names are lowercase [a-z0-9_/]"
            );
            assert!(
                !name.starts_with('/') && !name.ends_with('/') && !name.contains("//"),
                "{name}: empty path segment"
            );
            let ns = name.split('/').next().unwrap_or("");
            assert!(
                matches!(ns, "core" | "comm" | "kfac" | "ckpt" | "ctrl"),
                "{name}: unknown namespace {ns}"
            );
        }
    }

    #[test]
    fn is_registered_matches_membership() {
        assert!(is_registered(KFAC_STEP));
        assert!(is_registered(COMM_BARRIER));
        assert!(!is_registered("zzz/unregistered"));
        assert!(!is_registered(""));
    }

    /// The registry file is the single source of truth the lint pass
    /// parses; this pins that [`ALL`] covers at least the names every
    /// report path touches, so a constant added above but forgotten in
    /// `ALL` fails here instead of silently escaping the lint.
    #[test]
    fn registry_lists_every_constant() {
        // Parse our own source the same way compso-lint does: every
        // `pub const X: &str = "...";` value must be in ALL.
        let src = include_str!("names.rs");
        let mut missing = Vec::new();
        for line in src.lines() {
            let t = line.trim();
            let Some(rest) = t.strip_prefix("pub const ") else {
                continue;
            };
            if !rest.contains(": &str") {
                continue;
            }
            let Some(q0) = rest.find('"') else { continue };
            let Some(q1) = rest[q0 + 1..].find('"') else {
                continue;
            };
            let val = &rest[q0 + 1..q0 + 1 + q1];
            if !is_registered(val) {
                missing.push(val.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "constants missing from ALL: {missing:?}"
        );
        // And the parse actually saw the constants (guards against the
        // include_str! drifting from the real file).
        assert!(src.contains("pub const KFAC_STEP"));
    }
}
