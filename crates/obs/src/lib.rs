//! # compso-obs
//!
//! Step-level observability for the COMPSO reproduction.
//!
//! The paper's contribution is a *performance model* (§5, Fig. 1) that
//! predicts where iteration time goes in compressed distributed K-FAC.
//! This crate provides the measured side of that story: a lightweight,
//! thread-safe instrumentation registry with
//!
//! * **span timers** — wall-time accumulation per named phase, RAII guards
//!   safe to hold across rayon worker threads and per-rank collective
//!   threads;
//! * **monotonic counters** — bytes in/out for live compression ratios,
//!   message counts;
//! * **log2-bucket histograms** — message-size and span-duration
//!   distributions without unbounded memory.
//!
//! A [`Recorder`] is either *enabled* (backed by a shared atomic registry)
//! or *disabled* (a `None`, making every call a branch on an `Option` —
//! near-zero overhead on hot paths). Hot-path layers accept a `&Recorder`
//! and default to disabled, so uninstrumented callers pay almost nothing.
//!
//! [`Snapshot`]s are point-in-time copies that can be diffed (per-step
//! deltas) and merged (across ranks), and [`StepReport`] renders a
//! snapshot as the per-step JSON document the `obs_report` bench bin
//! compares against [`IterationModel::breakdown`] predictions.
//!
//! [`IterationModel::breakdown`]: ../compso_sim/timing/struct.IterationModel.html

mod json;
pub mod names;
mod report;
mod snapshot;

pub use json::{escape as json_escape, validate as json_validate};
pub use report::{ActiveSetting, ControlBlock, Resilience, StepReport, PHASE_OTHER, STEP_PHASES};
pub use snapshot::{HistStat, Snapshot, TimerStat};

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Number of log2 histogram buckets: bucket `i` holds values whose
/// bit-length is `i` (bucket 0 is exactly zero, bucket 64 is `u64::MAX`
/// territory).
pub const HIST_BUCKETS: usize = 65;

/// Log2 bucket index of a value (0 for 0, else `64 - leading_zeros`).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound of a bucket (inverse of [`bucket_of`], for display).
pub fn bucket_floor(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1),
    }
}

#[derive(Default)]
struct TimerCell {
    total_ns: AtomicU64,
    count: AtomicU64,
}

struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The shared metric store behind an enabled [`Recorder`].
///
/// Lookup takes a read lock on the name→cell map; updates are plain
/// relaxed atomic adds, so concurrent increments from worker threads are
/// lossless and nearly contention-free once a cell exists.
#[derive(Default)]
struct Registry {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    timers: RwLock<HashMap<&'static str, Arc<TimerCell>>>,
    hists: RwLock<HashMap<&'static str, Arc<HistCell>>>,
}

fn cell<T: Default>(map: &RwLock<HashMap<&'static str, Arc<T>>>, name: &'static str) -> Arc<T> {
    if let Some(c) = map.read().expect("obs registry poisoned").get(name) {
        return Arc::clone(c);
    }
    let mut w = map.write().expect("obs registry poisoned");
    Arc::clone(w.entry(name).or_default())
}

/// Handle to the instrumentation registry.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same metrics.
/// [`Recorder::disabled`] produces a no-op handle whose every operation is
/// a single `Option` branch with **no side effects** — safe to leave in
/// release hot paths.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// A live recorder backed by a fresh registry.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// The no-op recorder (also the `Default`).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the monotonic counter `name`.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(reg) = &self.inner {
            cell(&reg.counters, name).fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increments the counter `name` by one.
    #[inline]
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Records `value` into the log2 histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(reg) = &self.inner {
            let h = cell(&reg.hists, name);
            h.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Opens a wall-time span; the elapsed time lands in timer `name` when
    /// the returned guard drops. Spans may nest freely (each records its
    /// own wall time, so a parent's total covers its children's).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            live: self
                .inner
                .as_ref()
                .map(|reg| (cell(&reg.timers, name), Instant::now())),
        }
    }

    /// Adds a pre-measured duration to timer `name` (for call sites that
    /// cannot hold a guard across an await/channel boundary).
    #[inline]
    pub fn add_time_ns(&self, name: &'static str, ns: u64) {
        if let Some(reg) = &self.inner {
            let t = cell(&reg.timers, name);
            t.total_ns.fetch_add(ns, Ordering::Relaxed);
            t.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current value of counter `name` (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|reg| {
                reg.counters
                    .read()
                    .expect("obs registry poisoned")
                    .get(name)
                    .map(|c| c.load(Ordering::Relaxed))
            })
            .unwrap_or(0)
    }

    /// Accumulated nanoseconds of timer `name` (0 when absent/disabled).
    pub fn timer_ns(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|reg| {
                reg.timers
                    .read()
                    .expect("obs registry poisoned")
                    .get(name)
                    .map(|t| t.total_ns.load(Ordering::Relaxed))
            })
            .unwrap_or(0)
    }

    /// Point-in-time copy of every metric. Disabled recorders yield an
    /// empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(reg) = &self.inner else {
            return snap;
        };
        for (name, c) in reg.counters.read().expect("obs registry poisoned").iter() {
            snap.counters
                .insert((*name).to_string(), c.load(Ordering::Relaxed));
        }
        for (name, t) in reg.timers.read().expect("obs registry poisoned").iter() {
            snap.timers.insert(
                (*name).to_string(),
                TimerStat {
                    total_ns: t.total_ns.load(Ordering::Relaxed),
                    count: t.count.load(Ordering::Relaxed),
                },
            );
        }
        for (name, h) in reg.hists.read().expect("obs registry poisoned").iter() {
            snap.hists.insert(
                (*name).to_string(),
                HistStat {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                },
            );
        }
        snap
    }

    /// Zeroes every metric while keeping registered names (per-step reuse).
    pub fn reset(&self) {
        let Some(reg) = &self.inner else {
            return;
        };
        for c in reg.counters.read().expect("obs registry poisoned").values() {
            c.store(0, Ordering::Relaxed);
        }
        for t in reg.timers.read().expect("obs registry poisoned").values() {
            t.total_ns.store(0, Ordering::Relaxed);
            t.count.store(0, Ordering::Relaxed);
        }
        for h in reg.hists.read().expect("obs registry poisoned").values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII guard produced by [`Recorder::span`].
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct SpanGuard {
    live: Option<(Arc<TimerCell>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.live.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            if b > 0 {
                assert_eq!(bucket_of(bucket_floor(b)), b, "floor of bucket {b}");
            }
        }
    }

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::enabled();
        rec.add("x", 3);
        rec.incr("x");
        rec.add("y", 10);
        assert_eq!(rec.counter("x"), 4);
        assert_eq!(rec.counter("y"), 10);
        assert_eq!(rec.counter("absent"), 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        rec.add("x", 3);
        rec.observe("h", 100);
        {
            let _g = rec.span("s");
        }
        rec.add_time_ns("t", 5);
        assert!(!rec.is_enabled());
        assert_eq!(rec.counter("x"), 0);
        assert_eq!(rec.timer_ns("s"), 0);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.timers.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn spans_measure_time() {
        let rec = Recorder::enabled();
        {
            let _g = rec.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(
            rec.timer_ns("outer") >= 1_000_000,
            "{}",
            rec.timer_ns("outer")
        );
        let snap = rec.snapshot();
        assert_eq!(snap.timers["outer"].count, 1);
    }

    #[test]
    fn nested_spans_parent_covers_children() {
        let rec = Recorder::enabled();
        {
            let _parent = rec.span("parent");
            for _ in 0..3 {
                let _child = rec.span("child");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let parent = rec.timer_ns("parent");
        let child = rec.timer_ns("child");
        assert!(parent >= child, "parent {parent} < children {child}");
        assert_eq!(rec.snapshot().timers["child"].count, 3);
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.add("shared", 7);
        assert_eq!(rec.counter("shared"), 7);
    }

    #[test]
    fn histograms_bucket_correctly() {
        let rec = Recorder::enabled();
        for v in [0u64, 1, 1, 5, 5, 5, 1024] {
            rec.observe("h", v);
        }
        let snap = rec.snapshot();
        let h = &snap.hists["h"];
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1 + 1 + 5 * 3 + 1024);
        assert_eq!(h.buckets[bucket_of(0)], 1);
        assert_eq!(h.buckets[bucket_of(1)], 2);
        assert_eq!(h.buckets[bucket_of(5)], 3);
        assert_eq!(h.buckets[bucket_of(1024)], 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let rec = Recorder::enabled();
        rec.add("c", 5);
        rec.add_time_ns("t", 100);
        rec.observe("h", 9);
        rec.reset();
        assert_eq!(rec.counter("c"), 0);
        assert_eq!(rec.timer_ns("t"), 0);
        let snap = rec.snapshot();
        assert!(snap.counters.contains_key("c"));
        assert_eq!(snap.hists["h"].count, 0);
    }

    #[test]
    fn concurrent_updates_from_threads_are_lossless() {
        let rec = Recorder::enabled();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        rec.add("n", 1);
                        rec.observe("h", i % 17);
                        rec.add_time_ns("t", 3);
                    }
                });
            }
        });
        assert_eq!(rec.counter("n"), threads * per_thread);
        let snap = rec.snapshot();
        assert_eq!(snap.hists["h"].count, threads * per_thread);
        assert_eq!(
            snap.hists["h"].buckets.iter().sum::<u64>(),
            threads * per_thread
        );
        assert_eq!(snap.timers["t"].total_ns, threads * per_thread * 3);
        assert_eq!(snap.timers["t"].count, threads * per_thread);
    }

    #[test]
    fn concurrent_updates_from_rayon_workers_are_lossless() {
        use rayon::prelude::*;
        let rec = Recorder::enabled();
        let items: Vec<u64> = (0..50_000).collect();
        let total: u64 = items
            .par_chunks(512)
            .map(|chunk| {
                let _g = rec.span("worker");
                let mut s = 0u64;
                for &v in chunk {
                    rec.incr("seen");
                    rec.observe("values", v);
                    s += v;
                }
                s
            })
            .sum();
        assert_eq!(total, 50_000 * 49_999 / 2);
        assert_eq!(rec.counter("seen"), 50_000);
        let snap = rec.snapshot();
        assert_eq!(snap.hists["values"].count, 50_000);
        assert_eq!(snap.timers["worker"].count, 50_000_u64.div_ceil(512));
    }
}
