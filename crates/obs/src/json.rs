//! Hand-rolled JSON utilities: string escaping for the report writer and
//! a strict recursive-descent validator used by the tier-1 tests to check
//! reports are well-formed without pulling in a parser dependency.

/// Escapes a string for inclusion in a JSON document (quotes not added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns a byte offset + message on
/// the first syntax error.
pub fn validate(input: &str) -> Result<(), (usize, &'static str)> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err((pos, "trailing data after JSON value"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err((*pos, "expected a JSON value")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), (usize, &'static str)> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err((*pos, "malformed literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err((*pos, "expected object key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err((*pos, "expected ':' after key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or((*pos, "short \\u escape"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err((*pos, "bad \\u escape"));
                    }
                    *pos += 6;
                }
                _ => return Err((*pos, "bad escape")),
            },
            0x00..=0x1F => return Err((*pos, "raw control character in string")),
            _ => *pos += 1,
        }
    }
    Err((*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), (usize, &'static str)> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err((start, "expected digits"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err((*pos, "expected fraction digits"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err((*pos, "expected exponent digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": true, "d": null}"#,
            "  {\n\"k\": -0.0}  ",
        ] {
            assert!(validate(doc).is_ok(), "{doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{'a': 1}",
            "{\"a\": 1} extra",
            "01a",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(validate(doc).is_err(), "{doc}");
        }
    }

    #[test]
    fn escape_round_trips_through_validation() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode\u{203d}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        assert!(validate(&doc).is_ok(), "{doc}");
    }
}
