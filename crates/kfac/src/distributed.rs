//! KAISA-style distributed K-FAC with pluggable gradient compression.
//!
//! Each rank owns a full model replica and a data shard. Per iteration
//! (Fig. 2 of the paper):
//!
//! 1. local forward/backward;
//! 2. **bucketed** ring all-reduce of the raw gradients: every trainable
//!    layer's gradient is flattened into one reusable fusion buffer, a
//!    single `allreduce_mean` moves the whole bucket, and the averaged
//!    values are scattered back in place — one collective per step
//!    instead of one per layer (the gradient-fusion argument of the
//!    adaptive-compression systems line of work);
//! 3. per-K-FAC-layer covariances, **bucketed** like step 2: every
//!    layer's `a_cov`/`g_cov` is flattened into a reusable factor fusion
//!    buffer and one `allreduce_mean` moves the whole bucket (one
//!    collective per step instead of two per K-FAC layer), then the
//!    averaged factors are folded into running averages (identical on
//!    every rank);
//! 4. the *owner* of each layer (greedy cost-balanced assignment, as in
//!    KAISA) refreshes eigendecompositions on schedule and preconditions
//!    the layer's gradient;
//! 5. **pipelined** ring all-gather of the preconditioned gradients.
//!    This is the traffic COMPSO compresses: owners compress their
//!    layers' preconditioned gradients (aggregating up to `aggregation`
//!    layers per compressed unit, via [`Compressor::compress_group`]
//!    with a cached [`LayerSchedule`] so chunked compressors reuse the
//!    paper's "pre-determined layer-block hashmap" every iteration).
//!    Each aggregation group travels in its own CRC-32 checksum frame,
//!    and on the default pipelined path
//!    ([`DistKfacConfig::pipeline_gather`]) the groups stream through
//!    the ring in slots: compression of group *k+1* overlaps the hops of
//!    group *k*, and peers decode each group **as it lands** instead of
//!    after the full gather — the paper's headline
//!    compression–communication overlap. With `pipeline_gather: false`
//!    the same frames travel concatenated through one
//!    compress-then-`allgather_var` call (the measurable baseline);
//!    group framing, compression order, and the RNG stream are identical
//!    in both modes, so the two paths are bit-identical;
//! 6. every rank installs the decoded preconditioned gradients (decoded
//!    in parallel over the N−1 peer buffers on the serial path; already
//!    streamed in on the pipelined path) and applies the identical
//!    SGD(+momentum) update.
//!
//! # Fault model and the degradation ladder
//!
//! Every collective call is **fallible** ([`CommError`]): receives carry
//! deadlines, transport faults are absorbed by the comm layer's ARQ, and
//! a crashed peer surfaces as `Poisoned`/`Disconnected` instead of a
//! hang. On top of that, every compressed all-gather payload travels
//! inside a CRC-32 checksum frame, and a payload that fails its checksum
//! or does not decode walks a **degradation ladder** (DESIGN.md §9)
//! instead of panicking:
//!
//! * **rung 1** — request a compressed resend from the origin (the origin
//!   keeps a clean framed copy of what it sent);
//! * **rung 2** — request an *uncompressed* resend of the values the
//!   origin itself installed (so a successful rung 2 keeps replicas
//!   consistent);
//! * **rung 3** — degrade locally: reuse the last good preconditioned
//!   gradient for the affected layer group, or — when none exists yet —
//!   leave the step-2 averaged raw gradient in place, i.e. take a plain
//!   SGD step for those layers. Training continues either way.
//!
//! A tiny always-on repair status exchange after the all-gather keeps the
//! repair schedule deterministic across ranks (everyone learns which
//! (requester, origin) pairs need repair, so nobody deadlocks waiting for
//! traffic that will never come). All ladder activity is counted into the
//! recorder (`kfac/degrade/*`) so the chaos suite can reconcile observed
//! degradations against the fault plane's injection ledger exactly.

use crate::kfac::{covariance, Kfac, KfacConfig};
use compso_comm::collectives::{
    allgather_var, allgather_var_quiet, allreduce_mean, pipelined_allgather,
};
use compso_comm::{CommError, Communicator, Payload};
use compso_core::wire::{frame_checksummed, framed_len, unframe_checksummed, Reader, Writer};
use compso_core::{CompressError, Compressor, LayerSchedule, NoCompression};
use compso_dnn::Sequential;
use compso_obs::{names, Recorder};
use compso_tensor::{Matrix, Rng};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Distributed K-FAC configuration.
pub struct DistKfacConfig {
    /// Core K-FAC hyperparameters.
    pub kfac: KfacConfig,
    /// Layers aggregated per compressed unit (§4.4's factor `m`).
    pub aggregation: usize,
    /// Stream the step-5 aggregation groups through the ring (compress
    /// group *k+1* while group *k*'s hops are in flight, decode each
    /// group as it lands) instead of compress-then-gather. Bit-identical
    /// to the serial path — same per-group frames, same compression
    /// order, same RNG stream — so `false` is purely the A/B baseline
    /// for measuring the overlap win.
    pub pipeline_gather: bool,
}

impl Default for DistKfacConfig {
    fn default() -> Self {
        DistKfacConfig {
            kfac: KfacConfig::default(),
            aggregation: 4,
            pipeline_gather: true,
        }
    }
}

/// Communication accounting for one step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Preconditioned-gradient bytes this rank would all-gather raw.
    pub gather_bytes_original: u64,
    /// Bytes actually all-gathered (equals original without compression).
    pub gather_bytes_wire: u64,
    /// All-reduce volume in bytes: the step-2 gradient bucket plus the
    /// step-3 fused factor bucket (both always travel uncompressed).
    pub allreduce_bytes: u64,
}

impl StepStats {
    /// Compression ratio achieved on the all-gather this step.
    pub fn gather_ratio(&self) -> f64 {
        if self.gather_bytes_wire == 0 {
            return 1.0;
        }
        self.gather_bytes_original as f64 / self.gather_bytes_wire as f64
    }
}

/// Greedy cost-balanced layer→rank assignment (KAISA's work split):
/// layers sorted by descending cost land on the currently least-loaded
/// rank. Deterministic, so every rank computes the same map.
pub fn assign_layers(costs: &[f64], ranks: usize) -> Vec<usize> {
    assert!(ranks > 0);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&x, &y| costs[y].total_cmp(&costs[x]).then(x.cmp(&y)));
    let mut load = vec![0.0f64; ranks];
    let mut owner = vec![0usize; costs.len()];
    for idx in order {
        let r = (0..ranks)
            .min_by(|&a, &b| load[a].total_cmp(&load[b]))
            // lint:allow(no-unwrap-on-comm-path): ranks > 0 is asserted above, so the range is non-empty
            .unwrap();
        owner[idx] = r;
        load[r] += costs[idx];
    }
    owner
}

/// One rank's distributed K-FAC optimizer instance.
pub struct DistKfac {
    kfac: Kfac,
    config: DistKfacConfig,
    /// Owner rank per K-FAC layer (indexed by position in `kfac_indices`).
    owners: Option<Vec<usize>>,
    /// Cached per-aggregation-group [`LayerSchedule`]s for this rank's
    /// owned layers: `(per-group chunk_elems choices, one schedule per
    /// group)`. Built once alongside the ownership map (the paper's
    /// layer-block hashmap "built during the initialization of the KFAC
    /// optimizer and reused for the rest of the iterations") when the
    /// compressor advertises a preferred chunk size; with adaptive
    /// chunking the per-group choices come from the §4.4 model via
    /// [`Compressor::chunk_elems_for`].
    schedules: Option<(Vec<usize>, Vec<LayerSchedule>)>,
    /// Times the schedule cache was (re)built. Stays at ≤ 1 for any fixed
    /// compressor; exposed for the reuse-invariant tests.
    schedule_builds: u32,
    /// Name of the compressor the schedule cache was built for. A
    /// controller-driven family switch changes it, which drops the cache
    /// (`ctrl/schedule_invalidations`): chunk geometry is a function of
    /// the family, and stale schedules would mis-tile the new one.
    active_compressor: Option<&'static str>,
    /// The membership epoch the ownership map was computed under. A
    /// mismatch with [`Communicator::epoch`] at the next step boundary
    /// drops the map and schedules so they rebuild for the new view
    /// (`kfac/elastic/reshards`).
    view_epoch: u64,
    /// Reusable fusion buffer for the bucketed step-2 gradient sync and
    /// the step-3 factor bucket (no per-step allocation churn).
    fusion: Vec<f32>,
    /// Last successfully decoded preconditioned gradient per layer — the
    /// ladder's rung-3 fallback store. Populated only while a fault
    /// campaign is armed, so the fault-free hot path pays nothing.
    last_good: BTreeMap<usize, Matrix>,
    /// RNG for stochastic compression.
    rng: Rng,
    /// Observability sink for the step's sub-phases (Fig. 1 taxonomy);
    /// disabled (no-op) by default.
    recorder: Recorder,
}

impl DistKfac {
    /// Creates the per-rank optimizer. `seed` must be identical across
    /// ranks for identical parameter trajectories.
    pub fn new(config: DistKfacConfig, seed: u64) -> Self {
        DistKfac {
            kfac: Kfac::new(config.kfac),
            config,
            owners: None,
            schedules: None,
            schedule_builds: 0,
            active_compressor: None,
            view_epoch: 0,
            fusion: Vec::new(),
            last_good: BTreeMap::new(),
            rng: Rng::new(seed ^ 0xFACADE),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder. Each subsequent [`DistKfac::step`]
    /// records the `kfac/step` wall time and its sub-phases
    /// (`kfac/step/{grad_sync,factor,inverse,allgather,update}`), and the
    /// compressor's per-phase timers / traffic counters flow into the same
    /// registry via [`Compressor::compress_recorded`].
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// One distributed optimization step after a local forward/backward.
    /// `compressor` handles the preconditioned-gradient all-gather
    /// (pass [`NoCompression`] for the paper's baseline).
    ///
    /// Returns the step's communication statistics, or the first
    /// unrecoverable transport error ([`CommError`]) — timeouts, exhausted
    /// retries, a poisoned group. Recoverable trouble (corrupted or
    /// undecodable compressed payloads) never surfaces here: it is
    /// absorbed by the degradation ladder (see the module docs) and shows
    /// up in the `kfac/degrade/*` counters instead.
    ///
    /// This calls [`Communicator::begin_step`] internally, so a scheduled
    /// crash-at-step fault fires at the top of the step; drive the step
    /// counter through this method only.
    pub fn step(
        &mut self,
        comm: &mut Communicator,
        model: &mut Sequential,
        compressor: &dyn Compressor,
    ) -> Result<StepStats, CommError> {
        // Elastic resharding: a membership epoch change (shrink or
        // rejoin) invalidates the ownership map — it was computed for a
        // different world size — and with it the schedule cache. Every
        // rank observes the same epoch at the same step boundary, so the
        // rebuilt map (over virtual ranks `0..comm.size()`) is identical
        // group-wide: the dead rank's aggregation groups land on
        // survivors, a rejoined rank picks its share back up.
        if comm.epoch() != self.view_epoch {
            self.view_epoch = comm.epoch();
            if self.owners.take().is_some() {
                self.schedules = None;
                self.recorder.incr(names::KFAC_ELASTIC_RESHARDS);
            }
        }
        // Control-plane compressor switches likewise invalidate the
        // schedule cache: its chunk geometry was chosen by (and for) the
        // previous family. Every rank sees the same switch at the same
        // step (the controller is deterministic and replica-identical),
        // so the caches stay in lockstep.
        let compressor_tag = compressor.name();
        if self.active_compressor != Some(compressor_tag) {
            if self.active_compressor.is_some() {
                self.schedules = None;
                self.recorder.incr(names::CTRL_SCHEDULE_INVALIDATIONS);
            }
            self.active_compressor = Some(compressor_tag);
        }
        let step_idx = comm.begin_step();
        let _step_span = self.recorder.span(names::KFAC_STEP);
        let mut stats = StepStats::default();
        let trainable = model.trainable_indices();
        let kfac_layers = model.kfac_indices();

        // (2) Data-parallel gradient sync, bucketed: flatten every
        // trainable layer's gradient into the reusable fusion buffer,
        // all-reduce the whole bucket with ONE collective, and scatter
        // the averaged values back in place. Per-layer collective latency
        // and per-step gradient clones are gone; the f32 reduction order
        // changes (blocks span layer boundaries) but is identical on
        // every rank, so replicas stay bit-identical.
        {
            let _span = self.recorder.span(names::KFAC_GRAD_SYNC);
            {
                let _bucket = self.recorder.span(names::KFAC_BUCKET);
                self.fusion.clear();
                for &idx in &trainable {
                    let grad = model.layer(idx).grads().ok_or(CommError::Protocol {
                        expected: "trainable layer with a gradient",
                    })?;
                    self.fusion.extend_from_slice(grad.as_slice());
                }
            }
            stats.allreduce_bytes += self.fusion.len() as u64 * 4;
            allreduce_mean(comm, &mut self.fusion)?;
            {
                let _bucket = self.recorder.span(names::KFAC_BUCKET);
                let mut offset = 0usize;
                for &idx in &trainable {
                    let grad = model
                        .layer_mut(idx)
                        .grads_mut()
                        .ok_or(CommError::Protocol {
                            expected: "trainable layer with a mutable gradient",
                        })?;
                    let n = grad.len();
                    grad.as_mut_slice()
                        .copy_from_slice(&self.fusion[offset..offset + n]);
                    offset += n;
                }
                debug_assert_eq!(offset, self.fusion.len());
            }
        }

        // (3) Factor statistics, bucketed like step 2: every layer's
        // local `a_cov`/`g_cov` is flattened into the (now free) fusion
        // buffer and ONE `allreduce_mean` moves the whole factor bucket —
        // 2·layers collectives fused into one per step. The f32 reduction
        // order changes (blocks span factor boundaries) but identically
        // on every rank, so replicas stay bit-identical.
        {
            let _span = self.recorder.span(names::KFAC_FACTOR);
            let mut covs: Vec<(usize, Matrix, Matrix)> = Vec::with_capacity(kfac_layers.len());
            self.fusion.clear();
            for &idx in &kfac_layers {
                let s = model.kfac_stats(idx).ok_or(CommError::Protocol {
                    expected: "kfac layer with captured statistics",
                })?;
                let a_cov = covariance(&s.a);
                let g_cov = covariance(&s.g);
                self.fusion.extend_from_slice(a_cov.as_slice());
                self.fusion.extend_from_slice(g_cov.as_slice());
                covs.push((idx, a_cov, g_cov));
            }
            let fused_bytes = self.fusion.len() as u64 * 4;
            stats.allreduce_bytes += fused_bytes;
            self.recorder
                .add(names::KFAC_FACTOR_FUSED_BYTES, fused_bytes);
            allreduce_mean(comm, &mut self.fusion)?;
            let mut off = 0usize;
            for (idx, mut a_cov, mut g_cov) in covs {
                let n = a_cov.len();
                a_cov
                    .as_mut_slice()
                    .copy_from_slice(&self.fusion[off..off + n]);
                off += n;
                let n = g_cov.len();
                g_cov
                    .as_mut_slice()
                    .copy_from_slice(&self.fusion[off..off + n]);
                off += n;
                self.kfac.absorb_covariances(idx, &a_cov, &g_cov);
            }
            debug_assert_eq!(off, self.fusion.len());
        }

        // (4) Ownership map: built once (layer shapes are static).
        let owners = match &self.owners {
            Some(o) => o.clone(),
            None => {
                let mut costs: Vec<f64> = Vec::with_capacity(kfac_layers.len());
                for &idx in &kfac_layers {
                    let s = model.kfac_stats(idx).ok_or(CommError::Protocol {
                        expected: "kfac layer with captured statistics",
                    })?;
                    let a = s.a.cols() as f64;
                    let g = s.g.cols() as f64;
                    costs.push(a * a * a + g * g * g);
                }
                let o = assign_layers(&costs, comm.size());
                self.owners = Some(o.clone());
                o
            }
        };

        // Precondition owned layers (the eigendecomposition / inverse
        // application phase of Fig. 1).
        let me = comm.rank();
        let mut owned: Vec<(usize, Matrix)> = Vec::new();
        {
            let _span = self.recorder.span(names::KFAC_INVERSE);
            for (pos, &idx) in kfac_layers.iter().enumerate() {
                if owners[pos] == me {
                    let grad = model
                        .layer(idx)
                        .grads()
                        .ok_or(CommError::Protocol {
                            expected: "owned kfac layer with a gradient",
                        })?
                        .clone();
                    let pre = self.kfac.precondition_layer(idx, &grad);
                    owned.push((idx, pre));
                }
            }
        }

        // Build (once) the per-group layer schedules for chunked
        // compressors: the §4.5 layer-block hashmap, keyed on the
        // compressor's preferred chunk size. Layer shapes are static, so
        // for any fixed compressor this runs exactly once per optimizer
        // lifetime and every later step reuses the cache.
        let m = self.config.aggregation.max(1);
        if compressor.preferred_chunk_elems().is_some() {
            // Per-group chunk choice: fixed compressors return their
            // default for every total; adaptive ones scale the tile
            // with the group's element count (§4.4 model). Either way
            // the choice is a pure function of the static layer shapes,
            // so the cache still builds exactly once per compressor.
            let choices: Vec<usize> = owned
                .chunks(m)
                .map(|group| {
                    let total: usize = group.iter().map(|(_, pre)| pre.len()).sum();
                    compressor
                        .chunk_elems_for(total)
                        // lint:allow(no-unwrap-on-comm-path): guarded by the preferred_chunk_elems().is_some() branch above
                        .expect("chunked compressor without chunk choice")
                })
                .collect();
            let stale = match &self.schedules {
                Some((cached, _)) => *cached != choices,
                None => true,
            };
            if stale {
                let groups: Vec<LayerSchedule> = owned
                    .chunks(m)
                    .zip(&choices)
                    .map(|(group, &chunk_elems)| {
                        let sizes: Vec<usize> = group.iter().map(|(_, pre)| pre.len()).collect();
                        LayerSchedule::build(&sizes, chunk_elems)
                    })
                    .collect();
                self.schedules = Some((choices, groups));
                self.schedule_builds += 1;
            }
        }

        // Deterministic per-rank expectation: which layers (and shapes)
        // each rank's payload must carry, grouped by the aggregation
        // factor. Identical on all ranks, computed *before* the gather so
        // the pipelined path can validate and decode each group the
        // moment it lands; it is also the yardstick hostile payload
        // headers are validated against.
        let p = comm.size();
        let mut expected: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); p];
        for (pos, &idx) in kfac_layers.iter().enumerate() {
            let g = model.layer(idx).grads().ok_or(CommError::Protocol {
                expected: "kfac layer with a gradient",
            })?;
            expected[owners[pos]].push((idx, g.rows(), g.cols()));
        }
        let n_groups: Vec<usize> = expected.iter().map(|e| e.chunks(m).count()).collect();

        // (5) All-gather the preconditioned gradients, compressed in
        // aggregation groups through the compressor's multi-layer entry
        // point (chunked compressors run the §4.5 parallel kernels here,
        // reusing the cached schedule; the layer slices are borrowed, so
        // no flatten copy happens on this side either). Each group
        // travels in its own CRC-32 checksum frame — frames are
        // self-delimiting, so a rank's canonical payload is simply their
        // concatenation — and clean copies stay behind for the ladder's
        // repair rungs. On the default pipelined path the groups stream
        // through the ring: compression of group k+1 overlaps the hops
        // of group k, and every peer group is decoded as it lands. Both
        // modes produce the frames in the same order with the same RNG
        // stream, so they are bit-identical.
        let allgather_span = self.recorder.span(names::KFAC_ALLGATHER);
        for (_, pre) in &owned {
            stats.gather_bytes_original += pre.len() as u64 * 4;
        }
        let plane = comm.fault_plane().clone();
        let mut clean_frames: Vec<Vec<u8>> = Vec::with_capacity(n_groups[me]);
        // Per-(origin, group) streaming decode slots for the pipelined
        // path.
        type DecodedGroup = Option<Result<Vec<(usize, Matrix)>, CompressError>>;
        let mut decoded: Vec<Vec<DecodedGroup>> = n_groups
            .iter()
            .map(|&g| (0..g).map(|_| None).collect())
            .collect();
        let gathered: Vec<Vec<u8>> = if self.config.pipeline_gather {
            let rng = &mut self.rng;
            let rec = &self.recorder;
            let schedules = &self.schedules;
            let owned_ref = &owned;
            let clean = &mut clean_frames;
            let out = &mut decoded;
            let expected_ref = &expected;
            pipelined_allgather(
                comm,
                &n_groups,
                |g| {
                    // lint:allow(no-unwrap-on-comm-path): pipelined_allgather only calls produce for g < n_groups[me]
                    let group = owned_ref.chunks(m).nth(g).expect("produce group in range");
                    let schedule = schedules.as_ref().and_then(|(_, gs)| gs.get(g));
                    let frame = encode_group_frame(group, schedule, compressor, rng, rec);
                    clean.push(frame.clone());
                    let mut tx = frame;
                    if g == 0 {
                        // Origin-side payload corruption (fault class the
                        // ladder absorbs; no-op with the plane disabled).
                        // The per-(rank, step) corruption decision lands
                        // in the first group's frame; detection is
                        // per-group but repair stays at origin
                        // granularity, so the ladder behaves exactly as
                        // on the serial path.
                        plane.maybe_corrupt_payload(me, step_idx, &mut tx);
                    }
                    tx
                },
                |origin, g, bytes| {
                    let chunk = expected_ref[origin].chunks(m).nth(g);
                    out[origin][g] = Some(match chunk {
                        Some(chunk) => decode_group_frame(&bytes, chunk, compressor, rec),
                        None => Err(CompressError::Corrupt("pipeline group out of range")),
                    });
                },
            )?;
            Vec::new()
        } else {
            for (gi, group) in owned.chunks(m).enumerate() {
                let schedule = self.schedules.as_ref().and_then(|(_, gs)| gs.get(gi));
                clean_frames.push(encode_group_frame(
                    group,
                    schedule,
                    compressor,
                    &mut self.rng,
                    &self.recorder,
                ));
            }
            let mut tx = clean_frames.concat();
            // Origin-side payload corruption (fault class the ladder
            // absorbs; no-op with the plane disabled).
            plane.maybe_corrupt_payload(me, step_idx, &mut tx);
            allgather_var(comm, tx)?
        };
        // Canonical per-rank wire payload: the frames' concatenation —
        // identical in both modes, so the traffic stats agree whichever
        // path ran. Also the ladder's rung-1 resend body.
        let clean_payload: Vec<u8> = clean_frames.concat();
        stats.gather_bytes_wire += clean_payload.len() as u64;
        drop(allgather_span);

        // (6) Assemble every rank's contribution, then repair/degrade,
        // then install serially in rank order so the result is
        // independent of worker scheduling. Our own contribution decodes
        // from the clean frames — the origin never needs its own repair.
        let _update_span = self.recorder.span(names::KFAC_UPDATE);
        let mut results: Vec<Result<Vec<(usize, Matrix)>, CompressError>> = {
            let _decode_span = self.recorder.span(names::KFAC_PEER_DECODE);
            if self.config.pipeline_gather {
                // Peer groups already streamed in during the collective;
                // decode our own groups and fold per-group results into
                // one result per origin (any failed group marks the whole
                // origin for the ladder, which repairs at origin
                // granularity).
                for (g, frame) in clean_frames.iter().enumerate() {
                    // lint:allow(no-unwrap-on-comm-path): clean_frames holds exactly n_groups[me] frames
                    let chunk = expected[me].chunks(m).nth(g).expect("own group in range");
                    decoded[me][g] =
                        Some(decode_group_frame(frame, chunk, compressor, &self.recorder));
                }
                decoded
                    .into_iter()
                    .map(|groups| {
                        let mut entries = Vec::new();
                        for slot in groups {
                            match slot {
                                Some(Ok(e)) => entries.extend(e),
                                Some(Err(e)) => return Err(e),
                                None => {
                                    return Err(CompressError::Corrupt(
                                        "pipeline group never delivered",
                                    ))
                                }
                            }
                        }
                        Ok(entries)
                    })
                    .collect()
            } else {
                // Compress-then-gather baseline: validate + decode every
                // rank's concatenated payload in parallel (one rayon task
                // per payload).
                let rec = &self.recorder;
                let frames: Vec<(usize, &[u8])> = (0..p)
                    .map(|r| {
                        let bytes: &[u8] = if r == me {
                            &clean_payload
                        } else {
                            &gathered[r]
                        };
                        (r, bytes)
                    })
                    .collect();
                frames
                    .par_iter()
                    .map(|&(r, bytes)| decode_rank_frames(bytes, &expected[r], m, compressor, rec))
                    .collect()
            }
        };

        // Degradation ladder rungs 1–2: a tiny always-on status exchange
        // tells every rank which (requester, origin) pairs need repair —
        // the schedule stays deterministic, so the point-to-point repair
        // handshakes below cannot deadlock.
        let needs: Vec<u8> = results.iter().map(|r| u8::from(r.is_err())).collect();
        for (r, &n) in needs.iter().enumerate() {
            if n == 1 {
                debug_assert_ne!(r, me, "own clean payload failed to decode");
                self.recorder.incr(names::KFAC_DEGRADE_CHECKSUM_FAILURES);
                self.recorder.incr(names::KFAC_DEGRADE_REPAIR_REQUESTS);
            }
        }
        let statuses = {
            let _repair_span = self.recorder.span(names::COMM_ALLGATHER_REPAIR);
            allgather_var_quiet(comm, needs, names::COMM_ALLGATHER_REPAIR)?
        };
        let repair_from = |q: usize, o: usize| -> bool {
            q != o && statuses[q].get(o).copied().unwrap_or(0) == 1
        };
        // Precompute the rung-2 bytes once if anyone needs my payload:
        // the values *I installed* — decoded, not raw — so a rung-2
        // repair keeps replicas consistent.
        let rung2_clean = (0..p)
            .any(|q| repair_from(q, me))
            .then(|| frame_checksummed(&flatten_entries(&results[me], &owned)));
        // Walk every (origin, requester) repair pair in the SAME global
        // order on every rank. Each handshake involves exactly two ranks
        // and strictly alternates send/recv between them, so processing
        // the pairs in one shared order makes the phase deadlock-free
        // even when repairs are mutual (A needs B's payload while B
        // needs A's) or chained across several ranks.
        for o in 0..p {
            for q in 0..p {
                if !repair_from(q, o) {
                    continue;
                }
                if me == o {
                    // Origin side. Rung 1: compressed resend of the
                    // clean framed copy (all groups, concatenated).
                    let mut r1 = clean_payload.clone();
                    plane.maybe_corrupt_repair(me, q, step_idx, 1, &mut r1);
                    comm.send(q, Payload::Bytes(r1))?;
                    let ack = comm
                        .recv_labeled(q, names::KFAC_REPAIR_STATUS)?
                        .try_sizes()?;
                    if ack.first() != Some(&1) {
                        // Rung 2: uncompressed resend.
                        // lint:allow(no-unwrap-on-comm-path): repair_from(q, me) implies rung2_clean was precomputed above
                        let mut r2 = rung2_clean.clone().expect("rung2 precomputed");
                        plane.maybe_corrupt_repair(me, q, step_idx, 2, &mut r2);
                        comm.send(q, Payload::Bytes(r2))?;
                    }
                } else if me == q {
                    // Requester side.
                    let r1 = comm.recv_labeled(o, names::KFAC_REPAIR)?.try_bytes()?;
                    match decode_rank_frames(&r1, &expected[o], m, compressor, &self.recorder) {
                        Ok(entries) => {
                            comm.send(o, Payload::Sizes(vec![1]))?;
                            self.recorder.incr(names::KFAC_DEGRADE_REPAIR_COMPRESSED_OK);
                            results[o] = Ok(entries);
                        }
                        Err(_) => {
                            comm.send(o, Payload::Sizes(vec![0]))?;
                            let r2 = comm.recv_labeled(o, names::KFAC_REPAIR)?.try_bytes()?;
                            if let Ok(entries) = decode_uncompressed(&r2, &expected[o]) {
                                self.recorder
                                    .incr(names::KFAC_DEGRADE_REPAIR_UNCOMPRESSED_OK);
                                results[o] = Ok(entries);
                            }
                            // Still broken: rung 3 handles it at install.
                        }
                    }
                }
            }
        }

        // Install in rank order. Unrepairable payloads take rung 3 per
        // aggregation group: last good preconditioned gradient when one
        // exists, else the step-2 averaged raw gradient already sitting in
        // the model (a plain SGD step for those layers).
        for (r, res) in results.into_iter().enumerate() {
            match res {
                Ok(entries) => {
                    for (idx, grad) in entries {
                        if plane.is_enabled() {
                            self.last_good.insert(idx, grad.clone());
                        }
                        model.layer_mut(idx).set_grads(grad);
                    }
                }
                Err(_) => {
                    for group in expected[r].chunks(m) {
                        let have_all = group
                            .iter()
                            .all(|(idx, _, _)| self.last_good.contains_key(idx));
                        if have_all {
                            self.recorder.incr(names::KFAC_DEGRADE_FALLBACK_LAST_GOOD);
                            for (idx, _, _) in group {
                                let grad = self.last_good[idx].clone();
                                model.layer_mut(*idx).set_grads(grad);
                            }
                        } else {
                            self.recorder.incr(names::KFAC_DEGRADE_FALLBACK_SGD);
                        }
                    }
                }
            }
        }
        Ok(stats)
    }

    /// [`DistKfac::step`] with elastic fault handling: a transport error
    /// that names a culprit rank (crash, poison, exhausted retries,
    /// timeout) shrinks the group by quorum agreement, flushes the
    /// surviving streams at the step boundary, and retries on the new
    /// view — the interrupted step is abandoned on every rank alike (the
    /// transport serves a dead peer's in-flight frames before surfacing
    /// the failure, so survivors agree on which step that is). Only
    /// `Protocol` errors — which blame nobody — propagate, as does a
    /// shrink refusal (quorum loss).
    pub fn step_elastic(
        &mut self,
        comm: &mut Communicator,
        model: &mut Sequential,
        compressor: &dyn Compressor,
    ) -> Result<StepStats, CommError> {
        loop {
            match self.step(comm, model, compressor) {
                Ok(stats) => return Ok(stats),
                Err(e) => {
                    let Some(culprit) = e.culprit() else {
                        return Err(e);
                    };
                    comm.shrink(vec![culprit])?;
                    comm.resync_view()?;
                }
            }
        }
    }

    /// The greedy ownership map, once built.
    pub fn owners(&self) -> Option<&[usize]> {
        self.owners.as_deref()
    }

    /// The inner (replicated) K-FAC optimizer, for factor-state export.
    pub fn kfac(&self) -> &Kfac {
        &self.kfac
    }

    /// Mutable access to the inner K-FAC optimizer, for factor-state
    /// import at restore.
    pub fn kfac_mut(&mut self) -> &mut Kfac {
        &mut self.kfac
    }

    /// The attached observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Exports this rank's distributed-coordination state for
    /// checkpointing: the ownership map, the per-rank compression RNG
    /// stream (ranks consume different amounts, so each rank must save
    /// its own), and the degradation ladder's last-good store. The
    /// factor state itself travels separately via
    /// [`Kfac::export_layer_state`]; the schedule cache is rebuilt
    /// deterministically from the restored ownership map and is not
    /// serialized.
    pub fn export_state(&self) -> DistKfacState {
        // BTreeMap iterates in layer order, so the exported state is a
        // pure function of the map's contents.
        let last_good: Vec<(usize, Matrix)> = self
            .last_good
            .iter()
            .map(|(&idx, m)| (idx, m.clone()))
            .collect();
        DistKfacState {
            owners: self.owners.clone(),
            rng: self.rng.state(),
            last_good,
        }
    }

    /// Restores the state exported by [`DistKfac::export_state`]. The
    /// next [`DistKfac::step`] continues the interrupted trajectory
    /// bit-identically (given the model, factor state, and communicator
    /// step counter are restored alongside).
    pub fn import_state(&mut self, state: DistKfacState) {
        self.owners = state.owners;
        let (s, spare) = state.rng;
        self.rng = Rng::from_state(s, spare);
        self.last_good = state.last_good.into_iter().collect();
        // The schedule cache keys on the compressor's chunk size and the
        // owned shapes; dropping it forces a deterministic rebuild.
        self.schedules = None;
    }

    /// How many times the owned-layer schedule cache has been built.
    /// For any fixed compressor this is 0 (schedule-less compressors)
    /// or 1 (chunked compressors) for the optimizer's whole lifetime.
    pub fn schedule_builds(&self) -> u32 {
        self.schedule_builds
    }
}

/// Portable distributed-coordination state of one rank's [`DistKfac`]
/// (everything beyond the replicated factor state), produced by
/// [`DistKfac::export_state`] and consumed by [`DistKfac::import_state`].
#[derive(Clone, Debug)]
pub struct DistKfacState {
    /// Owner rank per K-FAC layer position, once built.
    pub owners: Option<Vec<usize>>,
    /// The stochastic-compression RNG stream `(xoshiro state, cached
    /// spare normal)`.
    pub rng: ([u64; 4], Option<f64>),
    /// The ladder's last-good preconditioned gradients, sorted by layer
    /// index.
    pub last_good: Vec<(usize, Matrix)>,
}

/// Convenience: the no-compression baseline compressor.
pub fn no_compression() -> NoCompression {
    NoCompression
}

/// Compresses one aggregation group into its self-contained CRC-32
/// checksum frame: `[group header][compressed block]` framed by
/// [`frame_checksummed`]. The unit of transfer for both gather modes —
/// the pipelined path streams one frame per ring slot, the serial path
/// concatenates them into one payload.
fn encode_group_frame(
    group: &[(usize, Matrix)],
    schedule: Option<&LayerSchedule>,
    compressor: &dyn Compressor,
    rng: &mut Rng,
    rec: &Recorder,
) -> Vec<u8> {
    let mut payload = Writer::new();
    // Group header: layer ids and shapes. The global layer index doubles
    // as the stable per-layer key for stateful compressors (PowerSGD
    // warm starts / error feedback): it is invariant to ownership splits,
    // so the keyed state — and the wire bytes — agree at any world size.
    payload.u32(group.len() as u32);
    let mut keyed: Vec<(u64, &[f32])> = Vec::with_capacity(group.len());
    for (idx, pre) in group {
        payload.u32(*idx as u32);
        payload.u32(pre.rows() as u32);
        payload.u32(pre.cols() as u32);
        keyed.push((*idx as u64, pre.as_slice()));
    }
    let compressed = compressor.compress_group_keyed(&keyed, schedule, rng, rec);
    payload.block(&compressed);
    frame_checksummed(&payload.into_bytes())
}

/// Validates and decodes one aggregation-group frame against its
/// deterministic expectation (`(layer idx, rows, cols)` per layer of the
/// group). Every header field is checked against the expectation *before*
/// any decode work, so a hostile or bit-flipped frame fails fast instead
/// of driving allocations.
fn decode_group_frame(
    frame: &[u8],
    chunk: &[(usize, usize, usize)],
    compressor: &dyn Compressor,
    rec: &Recorder,
) -> Result<Vec<(usize, Matrix)>, CompressError> {
    let payload = unframe_checksummed(frame)?;
    let mut r = Reader::new(payload);
    let group_len = r.u32()? as usize;
    if group_len != chunk.len() {
        return Err(CompressError::Corrupt("group length mismatch"));
    }
    for &(idx, rows, cols) in chunk {
        let got_idx = r.u32()? as usize;
        let got_rows = r.u32()? as usize;
        let got_cols = r.u32()? as usize;
        if got_idx != idx || got_rows != rows || got_cols != cols {
            return Err(CompressError::Corrupt("layer header mismatch"));
        }
    }
    let block = r.block()?;
    let layers = compressor.decompress_group(block, rec)?;
    if layers.len() != chunk.len() {
        return Err(CompressError::Corrupt("decoded layer count mismatch"));
    }
    let mut out = Vec::with_capacity(chunk.len());
    for (flat, &(idx, rows, cols)) in layers.into_iter().zip(chunk) {
        if flat.len() != rows * cols {
            return Err(CompressError::Corrupt("decoded layer size mismatch"));
        }
        out.push((idx, Matrix::from_vec(rows, cols, flat)));
    }
    if !r.is_exhausted() {
        return Err(CompressError::Corrupt("trailing group bytes"));
    }
    Ok(out)
}

/// Validates and decodes one rank's full all-gather payload — the
/// concatenation of its self-delimiting group frames, walked with
/// [`framed_len`] — against the deterministic expectation grouped by the
/// aggregation factor `m`. The serial gather path and the ladder's rung-1
/// repair both decode through here.
fn decode_rank_frames(
    bytes: &[u8],
    expected: &[(usize, usize, usize)],
    m: usize,
    compressor: &dyn Compressor,
    rec: &Recorder,
) -> Result<Vec<(usize, Matrix)>, CompressError> {
    let mut out: Vec<(usize, Matrix)> = Vec::with_capacity(expected.len());
    let mut off = 0usize;
    for chunk in expected.chunks(m) {
        let len = framed_len(&bytes[off..])
            .ok_or(CompressError::Corrupt("bad or truncated group frame"))?;
        out.extend(decode_group_frame(
            &bytes[off..off + len],
            chunk,
            compressor,
            rec,
        )?);
        off += len;
    }
    if off != bytes.len() {
        return Err(CompressError::Corrupt("trailing payload bytes"));
    }
    Ok(out)
}

/// Decodes a rung-2 (uncompressed) repair frame: the origin's installed
/// values as raw little-endian f32s, in `expected` order.
fn decode_uncompressed(
    frame: &[u8],
    expected: &[(usize, usize, usize)],
) -> Result<Vec<(usize, Matrix)>, CompressError> {
    let payload = unframe_checksummed(frame)?;
    let total: usize = expected.iter().map(|&(_, r, c)| r * c).sum();
    if payload.len() != total * 4 {
        return Err(CompressError::Corrupt("uncompressed repair size mismatch"));
    }
    let mut out = Vec::with_capacity(expected.len());
    let mut off = 0usize;
    for &(idx, rows, cols) in expected {
        let n = rows * cols;
        let flat: Vec<f32> = payload[off..off + n * 4]
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        off += n * 4;
        out.push((idx, Matrix::from_vec(rows, cols, flat)));
    }
    Ok(out)
}

/// Serializes the values this rank *installed* for its owned layers (the
/// decoded, possibly-lossy entries when its own decode succeeded, the raw
/// preconditioned matrices otherwise) as raw little-endian f32s — the
/// rung-2 repair body. Sending installed values keeps a repaired replica
/// bit-identical to the origin.
fn flatten_entries(
    result: &Result<Vec<(usize, Matrix)>, CompressError>,
    owned: &[(usize, Matrix)],
) -> Vec<u8> {
    let entries: &[(usize, Matrix)] = match result {
        Ok(entries) => entries,
        Err(_) => owned,
    };
    let total: usize = entries.iter().map(|(_, m)| m.len()).sum();
    let mut bytes = Vec::with_capacity(total * 4);
    for (_, m) in entries {
        for v in m.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_comm::run_ranks;
    use compso_core::{Compso, CompsoConfig};
    use compso_dnn::loss::{accuracy, softmax_cross_entropy};
    use compso_dnn::{data, models};

    #[test]
    fn assign_layers_balances_costs() {
        let costs = vec![8.0, 1.0, 7.0, 2.0, 6.0, 3.0, 5.0, 4.0];
        let owners = assign_layers(&costs, 4);
        let mut load = vec![0.0f64; 4];
        for (i, &o) in owners.iter().enumerate() {
            load[o] += costs[i];
        }
        let max = load.iter().cloned().fold(0.0f64, f64::max);
        let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min <= 2.0, "loads {load:?}");
    }

    #[test]
    fn assign_layers_deterministic() {
        let costs = vec![3.0, 3.0, 3.0, 1.0];
        assert_eq!(assign_layers(&costs, 2), assign_layers(&costs, 2));
    }

    #[test]
    fn more_ranks_than_layers_is_fine() {
        let owners = assign_layers(&[5.0, 1.0], 8);
        assert!(owners.iter().all(|&o| o < 8));
        assert_ne!(owners[0], owners[1]);
    }

    /// Core distributed invariant: after every step, all ranks hold
    /// identical parameters, and those match a single-process run on the
    /// concatenated data.
    #[test]
    fn ranks_stay_synchronized_and_match_serial() {
        let ranks = 4;
        let steps = 5;
        let batch_per_rank = 8;
        let d = data::gaussian_blobs(320, 6, 3, 0.3, 11);

        // Serial reference: one process, the full batch.
        let serial_params = {
            let mut rng = Rng::new(99);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let mut kfac = Kfac::new(KfacConfig::default());
            for step in 0..steps {
                // Assemble the same global batch the ranks see.
                let mut x = Matrix::zeros(batch_per_rank * ranks, 6);
                let mut y = Vec::new();
                for r in 0..ranks {
                    let shard = d.shard(r, ranks);
                    let (xs, ys) = shard.batch(step, batch_per_rank);
                    for b in 0..batch_per_rank {
                        x.row_mut(r * batch_per_rank + b).copy_from_slice(xs.row(b));
                    }
                    y.extend(ys);
                }
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                kfac.step(&mut model);
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            model.layer(0).params().unwrap().clone()
        };

        let results = run_ranks(ranks, |comm| {
            let mut rng = Rng::new(99); // same init as serial
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            let nc = no_compression();
            for step in 0..steps {
                let (x, y) = shard.batch(step, batch_per_rank);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &nc).unwrap();
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            model.layer(0).params().unwrap().clone()
        });

        for r in 1..ranks {
            assert!(
                results[0].max_diff(&results[r]) < 1e-5,
                "rank {r} diverged: {}",
                results[0].max_diff(&results[r])
            );
        }
        // Distributed covariances average per-shard covariances of equal-
        // sized batches = global covariance; gradients likewise. Allow
        // f32 collective-ordering noise.
        assert!(
            results[0].max_diff(&serial_params) < 5e-3,
            "distributed vs serial diff {}",
            results[0].max_diff(&serial_params)
        );
    }

    #[test]
    fn compressed_training_converges_and_reports_ratio() {
        let ranks = 4;
        let d = data::gaussian_blobs(320, 6, 3, 0.3, 13);
        let results = run_ranks(ranks, |comm| {
            let mut rng = Rng::new(5);
            let mut model = models::mlp(&[6, 64, 64, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(
                DistKfacConfig {
                    kfac: KfacConfig {
                        damping: 0.1,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                7,
            );
            let compso = Compso::new(CompsoConfig::aggressive(4e-3));
            let mut last = StepStats::default();
            for step in 0..80 {
                let (x, y) = shard.batch(step, 16);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                last = opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.005, g));
            }
            let logits = model.forward(&d.x, false);
            (accuracy(&logits, &d.y), last)
        });
        for (acc, _) in &results {
            assert!(*acc > 0.9, "accuracy {acc}");
        }
        // With 3 K-FAC layers over 4 ranks one rank owns nothing; judge
        // the compression ratio on the aggregate all-gather traffic.
        let original: u64 = results.iter().map(|(_, s)| s.gather_bytes_original).sum();
        let wire: u64 = results.iter().map(|(_, s)| s.gather_bytes_wire).sum();
        let ratio = original as f64 / wire as f64;
        assert!(ratio > 2.5, "gather compression ratio {ratio}");
    }

    #[test]
    fn compressed_ranks_stay_bit_identical() {
        // Compression is lossy but *deterministic and identical* across
        // ranks (same decompressed bytes everywhere), so replicas must not
        // drift.
        let ranks = 3;
        let d = data::gaussian_blobs(300, 6, 3, 0.3, 17);
        let results = run_ranks(ranks, |comm| {
            let mut rng = Rng::new(21);
            let mut model = models::mlp(&[6, 12, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            let compso = Compso::new(CompsoConfig::aggressive(1e-2));
            for step in 0..10 {
                let (x, y) = shard.batch(step, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            model.layer(0).params().unwrap().clone()
        });
        for r in 1..ranks {
            assert_eq!(results[0], results[r], "rank {r} drifted under compression");
        }
    }

    #[test]
    fn aggregation_factor_changes_wire_format_not_semantics() {
        let ranks = 2;
        let d = data::gaussian_blobs(200, 6, 3, 0.3, 19);
        let run = |aggregation: usize| {
            let d = d.clone();
            run_ranks(ranks, move |comm| {
                let mut rng = Rng::new(33);
                let mut model = models::mlp(&[6, 16, 16, 3], &mut rng);
                let shard = d.shard(comm.rank(), ranks);
                let mut opt = DistKfac::new(
                    DistKfacConfig {
                        aggregation,
                        ..Default::default()
                    },
                    7,
                );
                let nc = no_compression();
                for step in 0..5 {
                    let (x, y) = shard.batch(step, 8);
                    let logits = model.forward(&x, true);
                    let (_, grad) = softmax_cross_entropy(&logits, &y);
                    model.backward(&grad);
                    opt.step(comm, &mut model, &nc).unwrap();
                    model.update_params(|p, g| p.axpy(-0.02, g));
                }
                model.layer(0).params().unwrap().clone()
            })
        };
        let a1 = run(1);
        let a4 = run(4);
        assert!(a1[0].max_diff(&a4[0]) < 1e-6, "aggregation changed results");
    }

    #[test]
    fn recorder_covers_step_with_subphases() {
        use compso_obs::{names, Recorder, StepReport};
        let ranks = 2;
        let d = data::gaussian_blobs(200, 6, 3, 0.3, 29);
        let rec = Recorder::enabled();
        let rec_ref = &rec;
        run_ranks(ranks, |comm| {
            let mut rng = Rng::new(55);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            opt.set_recorder(rec_ref.clone());
            comm.set_recorder(rec_ref.clone());
            let compso = Compso::new(CompsoConfig::aggressive(4e-3));
            for step in 0..3 {
                let (x, y) = shard.batch(step, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
        });
        let snap = rec.snapshot();
        // 2 ranks × 3 steps, every sub-phase timed each step.
        assert_eq!(snap.timers[names::KFAC_STEP].count, 6);
        for phase in compso_obs::STEP_PHASES {
            assert_eq!(snap.timers[*phase].count, 6, "{phase}");
        }
        // Sub-phases partition the step: fractions sum to ~1 and the
        // tracked phases cannot exceed the step wall time they nest in.
        let report = StepReport::from_snapshot(0, &snap);
        assert!((report.fraction_sum() - 1.0).abs() < 1e-9);
        let tracked: u64 = compso_obs::STEP_PHASES
            .iter()
            .map(|p| snap.timers[*p].total_ns)
            .sum();
        assert!(tracked <= snap.timers[names::KFAC_STEP].total_ns);
        // The compressor fed the same registry: live CR is available.
        assert!(report.ratio.is_some());
        // And the collectives recorded traffic underneath.
        assert!(snap.counter(names::COMM_BYTES_SENT) > 0);
    }

    #[test]
    fn bucketed_sync_matches_per_layer_sync_within_f32_tolerance() {
        // The semantic claim behind the step-2 bucketing: one fused
        // allreduce over the concatenated gradients equals per-layer
        // allreduces up to f32 reduction order (ring blocks now span
        // layer boundaries).
        let ranks = 3;
        let d = data::gaussian_blobs(120, 6, 3, 0.3, 61);
        let results = run_ranks(ranks, |comm| {
            let mut rng = Rng::new(62);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let (x, y) = shard.batch(0, 8);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            let trainable = model.trainable_indices();
            // Reference: per-layer collectives on clones.
            let mut per_layer: Vec<Vec<f32>> = Vec::new();
            for &idx in &trainable {
                let mut g = model.layer(idx).grads().unwrap().clone();
                allreduce_mean(comm, g.as_mut_slice()).unwrap();
                per_layer.push(g.as_slice().to_vec());
            }
            // Bucketed: one collective over the concatenation.
            let mut fusion: Vec<f32> = Vec::new();
            for &idx in &trainable {
                fusion.extend_from_slice(model.layer(idx).grads().unwrap().as_slice());
            }
            allreduce_mean(comm, &mut fusion).unwrap();
            (per_layer, fusion)
        });
        for (per_layer, fusion) in &results {
            let flat_ref: Vec<f32> = per_layer.iter().flatten().copied().collect();
            assert_eq!(flat_ref.len(), fusion.len());
            for (a, b) in flat_ref.iter().zip(fusion) {
                assert!(
                    (a - b).abs() <= 1e-6 + a.abs() * 1e-5,
                    "bucketed {b} vs per-layer {a}"
                );
            }
        }
    }

    #[test]
    fn grad_sync_issues_exactly_one_allreduce_per_step() {
        use compso_obs::{names, Recorder};
        let ranks = 2;
        let steps = 4;
        let d = data::gaussian_blobs(200, 6, 3, 0.3, 67);
        let rec = Recorder::enabled();
        let rec_ref = &rec;
        run_ranks(ranks, |comm| {
            let mut rng = Rng::new(68);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
            opt.set_recorder(rec_ref.clone());
            comm.set_recorder(rec_ref.clone());
            let compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            for step in 0..steps {
                let (x, y) = shard.batch(step, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
        });
        let snap = rec.snapshot();
        // Per rank per step: exactly ONE gradient-sync allreduce (the
        // step-2 bucket) plus exactly ONE fused factor allreduce (the
        // step-3 bucket) — regardless of how many K-FAC layers the model
        // has.
        let expected = (ranks * steps) as u64 * 2;
        assert_eq!(snap.counter(names::COMM_ALLREDUCE_CALLS), expected);
        // The fused factor bucket actually moved bytes.
        assert!(snap.counter(names::KFAC_FACTOR_FUSED_BYTES) > 0);
        // One pipelined compressed all-gather per step completes the
        // picture; the serial allgather_var path stays cold by default.
        assert_eq!(
            snap.counter(names::COMM_PIPELINED_ALLGATHER_CALLS),
            (ranks * steps) as u64
        );
        assert_eq!(snap.counter(names::COMM_ALLGATHER_VAR_CALLS), 0);
        // The bucket flatten/scatter spans wrap the sync (2 per step).
        assert_eq!(
            snap.timers[names::KFAC_BUCKET].count,
            (ranks * steps * 2) as u64
        );
        // And the peer-decode span ran once per step per rank.
        assert_eq!(
            snap.timers[names::KFAC_PEER_DECODE].count,
            (ranks * steps) as u64
        );
    }

    #[test]
    fn chunked_compressed_training_bit_identical_across_thread_counts() {
        // Full-stack determinism: DistKfac + ChunkedCompso must produce
        // bit-identical parameters on every rank no matter how many rayon
        // workers the chunk kernels and peer decode fan out over, and the
        // LayerSchedule must be built exactly once per optimizer lifetime.
        let ranks = 3;
        let steps = 6;
        let d = data::gaussian_blobs(300, 6, 3, 0.3, 71);
        let run = |threads: usize| {
            let _guard = rayon::scoped_thread_override(threads);
            let d = d.clone();
            run_ranks(ranks, move |comm| {
                let mut rng = Rng::new(72);
                let mut model = models::mlp(&[6, 16, 16, 3], &mut rng);
                let shard = d.shard(comm.rank(), ranks);
                let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
                let compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
                for step in 0..steps {
                    let (x, y) = shard.batch(step, 8);
                    let logits = model.forward(&x, true);
                    let (_, grad) = softmax_cross_entropy(&logits, &y);
                    model.backward(&grad);
                    opt.step(comm, &mut model, &compso).unwrap();
                    model.update_params(|p, g| p.axpy(-0.02, g));
                }
                let params: Vec<Matrix> = (0..model.len())
                    .filter_map(|i| model.layer(i).params().cloned())
                    .collect();
                (params, opt.schedule_builds())
            })
        };
        let single = run(1);
        for &threads in &[2usize, 4] {
            let multi = run(threads);
            for (r, ((p1, b1), (pn, bn))) in single.iter().zip(&multi).enumerate() {
                assert_eq!(b1, bn);
                assert_eq!(*bn, 1, "schedule rebuilt on rank {r}");
                assert_eq!(
                    p1, pn,
                    "rank {r} params differ between 1 and {threads} threads"
                );
            }
        }
        // Ranks agree among themselves too.
        for r in 1..ranks {
            assert_eq!(single[0].0, single[r].0, "rank {r} drifted");
        }
    }

    #[test]
    fn schedule_cache_is_built_once_and_only_for_chunked_compressors() {
        let ranks = 2;
        let d = data::gaussian_blobs(160, 6, 3, 0.3, 73);
        let run = |use_chunked: bool| {
            let d = d.clone();
            run_ranks(ranks, move |comm| {
                let mut rng = Rng::new(74);
                let mut model = models::mlp(&[6, 16, 3], &mut rng);
                let shard = d.shard(comm.rank(), ranks);
                let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
                let chunked = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
                let serial = Compso::new(CompsoConfig::aggressive(4e-3));
                let compressor: &dyn compso_core::Compressor =
                    if use_chunked { &chunked } else { &serial };
                for step in 0..5 {
                    let (x, y) = shard.batch(step, 8);
                    let logits = model.forward(&x, true);
                    let (_, grad) = softmax_cross_entropy(&logits, &y);
                    model.backward(&grad);
                    opt.step(comm, &mut model, compressor).unwrap();
                    model.update_params(|p, g| p.axpy(-0.02, g));
                }
                opt.schedule_builds()
            })
        };
        for builds in run(true) {
            assert_eq!(builds, 1, "chunked compressor: schedule built once");
        }
        for builds in run(false) {
            assert_eq!(builds, 0, "serial compressor needs no schedule");
        }
    }

    #[test]
    fn adaptive_chunking_pins_bit_identical_training() {
        // §4.4 satellite pin: at training-regime layer-group sizes the
        // perf-model chunk choice equals the fixed default, so flipping
        // `with_adaptive_chunking()` must not move a single bit of the
        // trajectory — and the schedule cache still builds exactly once
        // (the per-group choices are pure functions of static shapes).
        let ranks = 2;
        let steps = 6;
        let d = data::gaussian_blobs(200, 6, 3, 0.3, 81);
        let run = |adaptive: bool| {
            let d = d.clone();
            run_ranks(ranks, move |comm| {
                let mut rng = Rng::new(82);
                let mut model = models::mlp(&[6, 16, 16, 3], &mut rng);
                let shard = d.shard(comm.rank(), ranks);
                let mut opt = DistKfac::new(DistKfacConfig::default(), 7);
                let mut compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
                if adaptive {
                    compso = compso.with_adaptive_chunking();
                }
                for step in 0..steps {
                    let (x, y) = shard.batch(step, 8);
                    let logits = model.forward(&x, true);
                    let (_, grad) = softmax_cross_entropy(&logits, &y);
                    model.backward(&grad);
                    opt.step(comm, &mut model, &compso).unwrap();
                    model.update_params(|p, g| p.axpy(-0.02, g));
                }
                let params: Vec<Matrix> = (0..model.len())
                    .filter_map(|i| model.layer(i).params().cloned())
                    .collect();
                (params, opt.schedule_builds())
            })
        };
        let fixed = run(false);
        let chosen = run(true);
        for (r, ((pf, bf), (pa, ba))) in fixed.iter().zip(&chosen).enumerate() {
            assert_eq!(bf, ba);
            assert_eq!(*ba, 1, "schedule rebuilt on rank {r}");
            assert_eq!(pf, pa, "rank {r}: adaptive chunking moved the trajectory");
        }
    }

    #[test]
    fn chunked_compressed_training_converges_and_compresses() {
        // ChunkedCompso as the production compressor: ranks stay
        // bit-identical, the model trains, and the wire is smaller.
        let ranks = 3;
        let d = data::gaussian_blobs(300, 6, 3, 0.3, 77);
        let results = run_ranks(ranks, |comm| {
            let mut rng = Rng::new(78);
            let mut model = models::mlp(&[6, 32, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let mut opt = DistKfac::new(
                DistKfacConfig {
                    kfac: KfacConfig {
                        damping: 0.1,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                7,
            );
            let compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            let mut last = StepStats::default();
            for step in 0..60 {
                let (x, y) = shard.batch(step, 16);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                last = opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.01, g));
            }
            let logits = model.forward(&d.x, false);
            (
                accuracy(&logits, &d.y),
                last,
                model.layer(0).params().unwrap().clone(),
            )
        });
        for r in 1..ranks {
            assert_eq!(results[0].2, results[r].2, "rank {r} drifted");
        }
        for (acc, _, _) in &results {
            assert!(*acc > 0.85, "accuracy {acc}");
        }
        let original: u64 = results
            .iter()
            .map(|(_, s, _)| s.gather_bytes_original)
            .sum();
        let wire: u64 = results.iter().map(|(_, s, _)| s.gather_bytes_wire).sum();
        assert!(
            (original as f64) / (wire as f64) > 1.5,
            "chunked gather ratio {original}/{wire}"
        );
    }

    #[test]
    fn step_stats_account_traffic() {
        let d = data::gaussian_blobs(100, 6, 3, 0.3, 23);
        let run = |pipeline: bool| {
            let d = d.clone();
            run_ranks(2, move |comm| {
                let mut rng = Rng::new(44);
                let mut model = models::mlp(&[6, 8, 3], &mut rng);
                let shard = d.shard(comm.rank(), 2);
                let config = DistKfacConfig {
                    pipeline_gather: pipeline,
                    ..DistKfacConfig::default()
                };
                let mut opt = DistKfac::new(config, 7);
                let nc = no_compression();
                let (x, y) = shard.batch(0, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &nc).unwrap()
            })
        };
        let results = run(true);
        // Step-2 gradient bucket: two linear layers, (6+1)*8 + (8+1)*3 =
        // 83 params -> 332 bytes. Step-3 fused factor bucket: a_cov is
        // (in+1)², g_cov is out² per layer, (6+1)² + 8² + (8+1)² + 3² =
        // 203 floats -> 812 bytes. Total allreduced per rank per step:
        // 1144 bytes.
        for s in &results {
            assert_eq!(s.allreduce_bytes, 332 + 812);
            assert!(s.gather_bytes_original > 0);
            // NoCompression wire size ≈ original + headers.
            assert!(s.gather_bytes_wire >= s.gather_bytes_original);
        }
        // Every layer is owned exactly once across ranks.
        let total_original: u64 = results.iter().map(|s| s.gather_bytes_original).sum();
        assert_eq!(total_original, 332);
        // The serial compress-then-gather baseline accounts the exact
        // same traffic: the canonical wire payload (concatenated group
        // frames) is identical in both modes.
        let serial = run(false);
        for (a, b) in results.iter().zip(&serial) {
            assert_eq!(a.allreduce_bytes, b.allreduce_bytes);
            assert_eq!(a.gather_bytes_original, b.gather_bytes_original);
            assert_eq!(a.gather_bytes_wire, b.gather_bytes_wire);
        }
    }

    #[test]
    fn serial_gather_mode_keeps_allgather_var_baseline() {
        use compso_obs::{names, Recorder};
        let ranks = 2;
        let steps = 3;
        let d = data::gaussian_blobs(160, 6, 3, 0.3, 91);
        let rec = Recorder::enabled();
        let rec_ref = &rec;
        run_ranks(ranks, |comm| {
            let mut rng = Rng::new(92);
            let mut model = models::mlp(&[6, 16, 3], &mut rng);
            let shard = d.shard(comm.rank(), ranks);
            let config = DistKfacConfig {
                pipeline_gather: false,
                ..DistKfacConfig::default()
            };
            let mut opt = DistKfac::new(config, 7);
            opt.set_recorder(rec_ref.clone());
            comm.set_recorder(rec_ref.clone());
            let compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
            for step in 0..steps {
                let (x, y) = shard.batch(step, 8);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                opt.step(comm, &mut model, &compso).unwrap();
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
        });
        let snap = rec.snapshot();
        // With pipeline_gather disabled the step-5 gather runs through
        // the classic compress-then-allgather_var path, and the pipelined
        // collective stays cold.
        assert_eq!(
            snap.counter(names::COMM_ALLGATHER_VAR_CALLS),
            (ranks * steps) as u64
        );
        assert_eq!(snap.counter(names::COMM_PIPELINED_ALLGATHER_CALLS), 0);
        // The factor fusion is mode-independent: still exactly two
        // allreduces per rank per step.
        assert_eq!(
            snap.counter(names::COMM_ALLREDUCE_CALLS),
            (ranks * steps) as u64 * 2
        );
    }

    #[test]
    fn pipelined_gather_is_bit_identical_to_serial_at_1_2_4_ranks() {
        // The tentpole invariant: streaming groups through the ring
        // (compress k+1 while k's hops are in flight, decode on arrival)
        // must not change a single bit of the training trajectory
        // relative to compress-then-gather, at any rank count.
        let steps = 5;
        let d = data::gaussian_blobs(240, 6, 3, 0.3, 87);
        let run = |ranks: usize, pipeline: bool| {
            let d = d.clone();
            run_ranks(ranks, move |comm| {
                let mut rng = Rng::new(88);
                let mut model = models::mlp(&[6, 16, 16, 3], &mut rng);
                let shard = d.shard(comm.rank(), ranks);
                let config = DistKfacConfig {
                    pipeline_gather: pipeline,
                    ..DistKfacConfig::default()
                };
                let mut opt = DistKfac::new(config, 7);
                let compso = compso_core::ChunkedCompso::new(CompsoConfig::aggressive(4e-3));
                for step in 0..steps {
                    let (x, y) = shard.batch(step, 8);
                    let logits = model.forward(&x, true);
                    let (_, grad) = softmax_cross_entropy(&logits, &y);
                    model.backward(&grad);
                    opt.step(comm, &mut model, &compso).unwrap();
                    model.update_params(|p, g| p.axpy(-0.02, g));
                }
                let params: Vec<Matrix> = (0..model.len())
                    .filter_map(|i| model.layer(i).params().cloned())
                    .collect();
                params
            })
        };
        for &ranks in &[1usize, 2, 4] {
            let pipelined = run(ranks, true);
            let serial = run(ranks, false);
            for (r, (a, b)) in pipelined.iter().zip(&serial).enumerate() {
                assert_eq!(
                    a, b,
                    "rank {r}/{ranks} params differ between pipelined and serial gather"
                );
            }
        }
    }

    #[test]
    fn fused_factor_sync_matches_per_layer_sync_within_f32_tolerance() {
        // The step-3 fusion changes the f32 reduction order (ring blocks
        // span factor boundaries). Per-factor allreduce_mean is the
        // semantic reference; fused values must agree to f32 tolerance.
        let ranks = 3;
        let results = run_ranks(ranks, |comm| {
            let r = comm.rank();
            let mut rng = Rng::new(900 + r as u64);
            // Heterogeneous fake factors, different on every rank.
            let factors: Vec<Vec<f32>> = [49usize, 64, 81, 9]
                .iter()
                .map(|&n| (0..n).map(|_| rng.normal(0.0, 1.0)).collect())
                .collect();
            let mut per_factor = factors.clone();
            for f in &mut per_factor {
                allreduce_mean(comm, f).unwrap();
            }
            let mut fused: Vec<f32> = factors.iter().flatten().copied().collect();
            allreduce_mean(comm, &mut fused).unwrap();
            (per_factor, fused)
        });
        for (per_factor, fused) in &results {
            let flat_ref: Vec<f32> = per_factor.iter().flatten().copied().collect();
            assert_eq!(flat_ref.len(), fused.len());
            for (a, b) in flat_ref.iter().zip(fused) {
                assert!(
                    (a - b).abs() <= 1e-6 + a.abs() * 1e-5,
                    "fused factor {b} vs per-layer {a}"
                );
            }
        }
    }
}
