//! Learning-rate schedules.
//!
//! §4.3 distinguishes exactly two families: **StepLR** ("decays the LR at
//! predefined steps by multiplying the base LR by a decay factor") and
//! **SmoothLR** ("decays LR by multiplying a factor by the base LR at
//! each iteration after the warmup"). COMPSO's iteration-wise adaptive
//! compression keys its strategy switches off these schedules.

/// A learning-rate schedule.
pub trait LrSchedule: Send + Sync {
    /// Learning rate at iteration `t`.
    fn lr_at(&self, t: usize) -> f32;

    /// Iteration of the first LR decrease (drives Alg. 1's StepLR branch);
    /// `None` when the schedule has no discrete drops.
    fn first_drop(&self) -> Option<usize>;
}

/// Piecewise-constant decay at fixed iterations.
#[derive(Clone, Debug)]
pub struct StepLr {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Iterations at which the LR is multiplied by `factor` (ascending).
    pub drops: Vec<usize>,
    /// Multiplicative decay per drop.
    pub factor: f32,
}

impl StepLr {
    /// A StepLR schedule.
    pub fn new(base_lr: f32, drops: Vec<usize>, factor: f32) -> Self {
        assert!(base_lr > 0.0 && factor > 0.0 && factor < 1.0);
        assert!(drops.windows(2).all(|w| w[0] < w[1]), "drops must ascend");
        StepLr {
            base_lr,
            drops,
            factor,
        }
    }
}

impl LrSchedule for StepLr {
    fn lr_at(&self, t: usize) -> f32 {
        let passed = self.drops.iter().filter(|&&d| t >= d).count();
        self.base_lr * self.factor.powi(passed as i32)
    }

    fn first_drop(&self) -> Option<usize> {
        self.drops.first().copied()
    }
}

/// Linear warmup followed by cosine decay — the "SmoothLR" family
/// (GPT-neo's cosine schedule in §5.1).
#[derive(Clone, Debug)]
pub struct SmoothLr {
    /// Peak learning rate, reached after warmup.
    pub base_lr: f32,
    /// Warmup iterations (linear ramp from 0).
    pub warmup: usize,
    /// Total iterations; LR reaches `min_lr` here.
    pub total: usize,
    /// Floor learning rate.
    pub min_lr: f32,
}

impl SmoothLr {
    /// A cosine schedule with warmup.
    pub fn new(base_lr: f32, warmup: usize, total: usize) -> Self {
        assert!(base_lr > 0.0 && total > warmup);
        SmoothLr {
            base_lr,
            warmup,
            total,
            min_lr: base_lr * 0.01,
        }
    }
}

impl LrSchedule for SmoothLr {
    fn lr_at(&self, t: usize) -> f32 {
        if t < self.warmup {
            return self.base_lr * (t + 1) as f32 / self.warmup as f32;
        }
        if t >= self.total {
            return self.min_lr;
        }
        let progress = (t - self.warmup) as f32 / (self.total - self.warmup) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }

    fn first_drop(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_lr_decays_at_drops() {
        let s = StepLr::new(1.0, vec![10, 20], 0.1);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(19) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(20) - 0.01).abs() < 1e-8);
        assert_eq!(s.first_drop(), Some(10));
    }

    #[test]
    fn smooth_lr_warms_up_then_decays() {
        let s = SmoothLr::new(0.1, 10, 100);
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!(s.lr_at(5) < s.lr_at(9));
        assert!((s.lr_at(10) - 0.1).abs() < 0.011); // near peak post-warmup
        assert!(s.lr_at(50) < s.lr_at(10));
        assert!(s.lr_at(99) < s.lr_at(50));
        assert_eq!(s.lr_at(1000), s.min_lr);
        assert_eq!(s.first_drop(), None);
    }

    #[test]
    fn smooth_lr_is_monotone_after_warmup() {
        let s = SmoothLr::new(0.5, 20, 200);
        let mut prev = f32::INFINITY;
        for t in 20..200 {
            let lr = s.lr_at(t);
            assert!(lr <= prev + 1e-9, "t={t}");
            prev = lr;
        }
    }

    #[test]
    #[should_panic(expected = "drops must ascend")]
    fn unsorted_drops_panic() {
        StepLr::new(1.0, vec![20, 10], 0.1);
    }
}
