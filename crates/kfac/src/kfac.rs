//! The K-FAC second-order optimizer (single process).
//!
//! Implements Eqs. 1–2 of the paper: per layer, Kronecker-factored
//! covariance matrices `A = E[ã ãᵀ]` and `G = E[g gᵀ]` maintained as
//! running averages, inverted through their eigendecompositions with
//! Tikhonov damping γ, and applied to the gradient matrix:
//!
//! ```text
//! precond(∇W) = Q_A [ (Q_Aᵀ ∇W Q_G) ⊘ (v_A v_Gᵀ + γ) ] Q_Gᵀ
//! ```
//!
//! which equals `(A ⊗ G + γI)⁻¹ vec(∇W)` reshaped — verified against the
//! dense Kronecker form in the tests.

use compso_dnn::{KfacStats, Sequential};
use compso_tensor::{sym_eig, Cholesky, EigenDecomposition, Matrix};
use std::collections::HashMap;

/// How the damped Fisher factors are inverted (§2.2: KAISA "employs an
/// alternate implicit inversion method for FIM").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InversionMethod {
    /// Eigendecomposition of both factors; Eq. 2's exact
    /// `(A ⊗ G + γI)⁻¹` via the shared eigenbasis.
    #[default]
    Eigen,
    /// KAISA's implicit route: Cholesky-solve against the *factored*
    /// damping `(A + π√γ·I)⁻¹ ∇W (G + √γ/π·I)⁻¹`, with π the
    /// Martens-Grosse norm-balancing factor. Cheaper to refresh (no
    /// eigendecomposition), slightly different damping geometry.
    Implicit,
}

/// K-FAC hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct KfacConfig {
    /// Tikhonov damping γ added to the Kronecker eigenvalue products.
    pub damping: f32,
    /// Running-average decay for the covariance factors.
    pub ema_decay: f32,
    /// Recompute eigendecompositions every this many steps (factor
    /// statistics still update every step).
    pub eigen_refresh: usize,
    /// Factor-inversion route.
    pub inversion: InversionMethod,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            damping: 1e-2,
            ema_decay: 0.95,
            eigen_refresh: 10,
            inversion: InversionMethod::Eigen,
        }
    }
}

/// Per-layer factor state.
pub(crate) struct LayerState {
    pub a_factor: Matrix,
    pub g_factor: Matrix,
    pub eig_a: Option<EigenDecomposition>,
    pub eig_g: Option<EigenDecomposition>,
    pub chol_a: Option<Cholesky>,
    pub chol_g: Option<Cholesky>,
    pub steps: usize,
}

impl LayerState {
    fn new(a_dim: usize, g_dim: usize) -> Self {
        LayerState {
            a_factor: Matrix::zeros(a_dim, a_dim),
            g_factor: Matrix::zeros(g_dim, g_dim),
            eig_a: None,
            eig_g: None,
            chol_a: None,
            chol_g: None,
            steps: 0,
        }
    }
}

/// Computes the batch covariance of a statistics matrix: `sᵀ s / rows`.
pub fn covariance(s: &Matrix) -> Matrix {
    let rows = s.rows().max(1) as f32;
    let mut c = s.t_matmul(s);
    c.scale(1.0 / rows);
    c.symmetrize();
    c
}

/// Folds a fresh covariance into a running average, bias-corrected on the
/// first step (so early factors are the plain covariance, not shrunk
/// toward zero).
pub fn ema_fold(state: &mut Matrix, fresh: &Matrix, decay: f32, steps: usize) {
    if steps == 0 {
        *state = fresh.clone();
    } else {
        state.ema_update(decay, fresh);
    }
}

/// Applies the eigenbasis preconditioner to a gradient matrix.
pub fn precondition(
    grad: &Matrix,
    eig_a: &EigenDecomposition,
    eig_g: &EigenDecomposition,
    damping: f32,
) -> Matrix {
    // grad is (a_dim × g_dim): rows follow A, columns follow G.
    let qa = &eig_a.vectors;
    let qg = &eig_g.vectors;
    // V1 = Q_Aᵀ grad Q_G
    let v1 = qa.t_matmul(grad).matmul(qg);
    // V2 = V1 ⊘ (v_A v_Gᵀ + γ)
    let mut v2 = v1;
    for i in 0..v2.rows() {
        let va = eig_a.values[i].max(0.0);
        for j in 0..v2.cols() {
            let vg = eig_g.values[j].max(0.0);
            let denom = va * vg + damping;
            let v = v2.get(i, j) / denom;
            v2.set(i, j, v);
        }
    }
    // out = Q_A V2 Q_Gᵀ
    qa.matmul(&v2).matmul_t(qg)
}

/// The Martens-Grosse norm-balancing factor π = √(tr(A)/dim_A ÷
/// tr(G)/dim_G), which splits the damping γ between the two factors so
/// neither dominates.
pub fn pi_factor(a: &Matrix, g: &Matrix) -> f32 {
    let tr = |m: &Matrix| -> f64 {
        (0..m.rows()).map(|i| m.get(i, i) as f64).sum::<f64>() / m.rows().max(1) as f64
    };
    let (ta, tg) = (tr(a).max(1e-30), tr(g).max(1e-30));
    ((ta / tg).sqrt() as f32).clamp(1e-3, 1e3)
}

/// KAISA's implicit preconditioner: `(A + π√γ I)⁻¹ ∇W (G + √γ/π I)⁻¹`
/// via two Cholesky solves — no eigendecomposition needed.
pub fn precondition_implicit(grad: &Matrix, chol_a: &Cholesky, chol_g: &Cholesky) -> Matrix {
    // X1 = (A + aI)^-1 grad  (solve per column of grad).
    let x1 = chol_a.solve(grad);
    // X2 = X1 (G + bI)^-1 = ((G + bI)^-1 X1ᵀ)ᵀ since G is symmetric.
    chol_g.solve(&x1.transpose()).transpose()
}

/// The K-FAC optimizer. Holds per-layer factor state keyed by layer
/// index; non-K-FAC layers (LayerNorm, ...) fall through untouched and
/// should be updated by the caller's first-order rule on their raw
/// gradients.
pub struct Kfac {
    /// Hyperparameters.
    pub config: KfacConfig,
    states: HashMap<usize, LayerState>,
}

impl Kfac {
    /// A fresh optimizer.
    pub fn new(config: KfacConfig) -> Self {
        Kfac {
            config,
            states: HashMap::new(),
        }
    }

    /// Updates factor statistics from one layer's captured `(a, g)` and
    /// refreshes its eigendecomposition on schedule. Returns whether the
    /// eigendecomposition is ready for preconditioning.
    pub fn update_layer(&mut self, idx: usize, stats: &KfacStats) -> bool {
        let a_cov = covariance(&stats.a);
        let g_cov = covariance(&stats.g);
        self.absorb_covariances(idx, &a_cov, &g_cov)
    }

    /// Like [`Kfac::update_layer`] but takes precomputed (possibly
    /// all-reduced) covariances — the distributed path.
    pub fn absorb_covariances(&mut self, idx: usize, a_cov: &Matrix, g_cov: &Matrix) -> bool {
        let state = self
            .states
            .entry(idx)
            .or_insert_with(|| LayerState::new(a_cov.rows(), g_cov.rows()));
        let decay = self.config.ema_decay;
        let steps = state.steps;
        ema_fold(&mut state.a_factor, a_cov, decay, steps);
        ema_fold(&mut state.g_factor, g_cov, decay, steps);
        state.steps += 1;
        if (state.steps - 1).is_multiple_of(self.config.eigen_refresh) {
            match self.config.inversion {
                InversionMethod::Eigen => {
                    state.eig_a = Some(sym_eig(&state.a_factor));
                    state.eig_g = Some(sym_eig(&state.g_factor));
                }
                InversionMethod::Implicit => {
                    let pi = pi_factor(&state.a_factor, &state.g_factor);
                    let sqrt_gamma = self.config.damping.sqrt();
                    let mut a = state.a_factor.clone();
                    a.add_diag(pi * sqrt_gamma);
                    let mut g = state.g_factor.clone();
                    g.add_diag(sqrt_gamma / pi);
                    state.chol_a = Cholesky::new(&a).ok();
                    state.chol_g = Cholesky::new(&g).ok();
                }
            }
        }
        state.eig_a.is_some() || state.chol_a.is_some()
    }

    /// Preconditions one layer's gradient (Eq. 2); identity when the
    /// layer has no eigendecomposition yet.
    pub fn precondition_layer(&self, idx: usize, grad: &Matrix) -> Matrix {
        match self.states.get(&idx) {
            Some(LayerState {
                eig_a: Some(ea),
                eig_g: Some(eg),
                ..
            }) => precondition(grad, ea, eg, self.config.damping),
            Some(LayerState {
                chol_a: Some(ca),
                chol_g: Some(cg),
                ..
            }) => precondition_implicit(grad, ca, cg),
            _ => grad.clone(),
        }
    }

    /// Full single-process step: capture statistics, precondition every
    /// K-FAC layer's gradient in place, leaving non-K-FAC layers' raw
    /// gradients intact. The caller then applies its update rule.
    pub fn step(&mut self, model: &mut Sequential) {
        let kfac_layers = model.kfac_indices();
        for &idx in &kfac_layers {
            let stats = model.kfac_stats(idx).expect("kfac index without stats");
            self.update_layer(idx, &stats);
            let grad = model.layer(idx).grads().expect("missing gradient").clone();
            let pre = self.precondition_layer(idx, &grad);
            model.layer_mut(idx).set_grads(pre);
        }
    }

    /// Read-only access to a layer's running factors (tests, diagnostics).
    pub fn factors(&self, idx: usize) -> Option<(&Matrix, &Matrix)> {
        self.states.get(&idx).map(|s| (&s.a_factor, &s.g_factor))
    }

    /// Layer indices with factor state, sorted ascending (a deterministic
    /// iteration order for checkpoint serialization).
    pub fn state_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self.states.keys().copied().collect();
        idx.sort_unstable();
        idx
    }

    /// Exports one layer's complete factor state — running covariances,
    /// cached eigendecompositions / Cholesky factors, and the per-layer
    /// step counter — for checkpointing. The cached inverses MUST travel
    /// with the factors: they are refreshed only every
    /// [`KfacConfig::eigen_refresh`] steps, so recomputing them at restore
    /// time would see a newer running average and silently fork the
    /// resumed trajectory from the uninterrupted one.
    pub fn export_layer_state(&self, idx: usize) -> Option<LayerStateExport> {
        self.states.get(&idx).map(|s| LayerStateExport {
            a_factor: s.a_factor.clone(),
            g_factor: s.g_factor.clone(),
            eig_a: s.eig_a.clone(),
            eig_g: s.eig_g.clone(),
            chol_a: s.chol_a.clone(),
            chol_g: s.chol_g.clone(),
            steps: s.steps,
        })
    }

    /// Installs a layer's factor state from a checkpoint, replacing any
    /// existing state for `idx`. Inverse of [`Kfac::export_layer_state`].
    pub fn import_layer_state(&mut self, idx: usize, state: LayerStateExport) {
        self.states.insert(
            idx,
            LayerState {
                a_factor: state.a_factor,
                g_factor: state.g_factor,
                eig_a: state.eig_a,
                eig_g: state.eig_g,
                chol_a: state.chol_a,
                chol_g: state.chol_g,
                steps: state.steps,
            },
        );
    }
}

/// A serializable copy of one layer's factor state (see
/// [`Kfac::export_layer_state`]).
#[derive(Clone, Debug)]
pub struct LayerStateExport {
    /// Running average of `A = E[ã ãᵀ]`.
    pub a_factor: Matrix,
    /// Running average of `G = E[g gᵀ]`.
    pub g_factor: Matrix,
    /// Cached eigendecomposition of `a_factor` (Eigen inversion route).
    pub eig_a: Option<EigenDecomposition>,
    /// Cached eigendecomposition of `g_factor`.
    pub eig_g: Option<EigenDecomposition>,
    /// Cached damped Cholesky factor of `a_factor` (Implicit route).
    pub chol_a: Option<Cholesky>,
    /// Cached damped Cholesky factor of `g_factor`.
    pub chol_g: Option<Cholesky>,
    /// Per-layer statistics step counter (drives the refresh schedule).
    pub steps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_dnn::layer::{Layer, Linear};
    use compso_dnn::loss::{accuracy, softmax_cross_entropy};
    use compso_dnn::{data, models};
    use compso_tensor::{Cholesky, Rng};

    #[test]
    fn covariance_matches_definition() {
        let mut rng = Rng::new(1);
        let s = Matrix::random_normal(50, 4, &mut rng);
        let c = covariance(&s);
        for i in 0..4 {
            for j in 0..4 {
                let mut expect = 0.0f64;
                for r in 0..50 {
                    expect += s.get(r, i) as f64 * s.get(r, j) as f64;
                }
                expect /= 50.0;
                assert!((c.get(i, j) as f64 - expect).abs() < 1e-4);
            }
        }
        assert_eq!(c.asymmetry(), 0.0);
    }

    /// The eigenbasis preconditioner must equal the dense Kronecker form
    /// `(A ⊗ G + γI)⁻¹ vec(∇W)` — the ground-truth check for Eq. 2.
    ///
    /// Layout note: for row-major `grad` with rows indexed by A and
    /// columns by G, `vec(grad)` in row-major order corresponds to the
    /// Kronecker product `A ⊗ G`.
    #[test]
    fn preconditioner_matches_dense_kronecker_inverse() {
        let mut rng = Rng::new(2);
        let a_dim = 4;
        let g_dim = 3;
        let make_spd = |n: usize, rng: &mut Rng| {
            let b = Matrix::random_normal(n, n, rng);
            let mut spd = b.t_matmul(&b);
            spd.add_diag(0.2);
            spd.symmetrize();
            spd
        };
        let a = make_spd(a_dim, &mut rng);
        let g = make_spd(g_dim, &mut rng);
        let grad = Matrix::random_normal(a_dim, g_dim, &mut rng);
        let damping = 0.05f32;

        let fast = precondition(&grad, &sym_eig(&a), &sym_eig(&g), damping);

        // Dense reference.
        let mut f = a.kron(&g);
        f.add_diag(damping);
        let vec_grad: Vec<f32> = grad.as_slice().to_vec();
        let solved = Cholesky::new(&f).unwrap().solve_vec(&vec_grad);
        let dense = Matrix::from_vec(a_dim, g_dim, solved);

        assert!(
            fast.max_diff(&dense) < 1e-3 * dense.max_abs().max(1.0),
            "diff {}",
            fast.max_diff(&dense)
        );
    }

    #[test]
    fn preconditioning_with_identity_factors_is_scaling() {
        // A = I, G = I -> preconditioner divides by (1 + γ).
        let eig_i3 = sym_eig(&Matrix::identity(3));
        let eig_i2 = sym_eig(&Matrix::identity(2));
        let grad = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let out = precondition(&grad, &eig_i3, &eig_i2, 0.5);
        let mut expect = grad.clone();
        expect.scale(1.0 / 1.5);
        assert!(out.max_diff(&expect) < 1e-5);
    }

    #[test]
    fn first_step_uses_plain_covariance() {
        let mut kfac = Kfac::new(KfacConfig::default());
        let mut rng = Rng::new(3);
        let stats = KfacStats {
            a: Matrix::random_normal(20, 3, &mut rng),
            g: Matrix::random_normal(20, 2, &mut rng),
        };
        kfac.update_layer(0, &stats);
        let (a, _) = kfac.factors(0).unwrap();
        let expect = covariance(&stats.a);
        assert!(a.max_diff(&expect) < 1e-6, "first EMA step must not shrink");
    }

    #[test]
    fn identity_passthrough_before_first_eigendecomposition() {
        let kfac = Kfac::new(KfacConfig::default());
        let grad = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        assert_eq!(kfac.precondition_layer(99, &grad), grad);
    }

    #[test]
    fn eigen_refresh_interval_respected() {
        let mut kfac = Kfac::new(KfacConfig {
            eigen_refresh: 5,
            ..Default::default()
        });
        let mut rng = Rng::new(4);
        // Feed identical stats; the *eigendecomposition* must only change
        // on refresh steps even though factors move every step.
        let mk = |rng: &mut Rng| KfacStats {
            a: Matrix::random_normal(10, 3, rng),
            g: Matrix::random_normal(10, 2, rng),
        };
        kfac.update_layer(0, &mk(&mut rng));
        let grad = Matrix::random_normal(3, 2, &mut rng);
        let p1 = kfac.precondition_layer(0, &grad);
        // Steps 2..5: stats change, eigens stale -> same preconditioner.
        for _ in 1..5 {
            kfac.update_layer(0, &mk(&mut rng));
        }
        let p_stale = kfac.precondition_layer(0, &grad);
        assert!(p1.max_diff(&p_stale) < 1e-7, "eigens refreshed too early");
        // Step 6 (index 5): refresh fires.
        kfac.update_layer(0, &mk(&mut rng));
        let p_fresh = kfac.precondition_layer(0, &grad);
        assert!(p1.max_diff(&p_fresh) > 1e-6, "eigens never refreshed");
    }

    /// The headline property: K-FAC reaches the accuracy target in fewer
    /// iterations than SGD at a comparable setting — the premise of the
    /// whole paper (§1, Fig. 6a's "60 vs 40 epochs").
    #[test]
    fn kfac_converges_in_fewer_iterations_than_sgd() {
        let iters_to = |use_kfac: bool| -> usize {
            let mut rng = Rng::new(5);
            let d = data::gaussian_blobs(400, 10, 4, 0.6, 6);
            let mut model = models::mlp(&[10, 24, 4], &mut rng);
            let mut kfac = Kfac::new(KfacConfig {
                damping: 1e-2,
                ema_decay: 0.9,
                eigen_refresh: 5,
                ..Default::default()
            });
            for step in 0..400 {
                let (x, y) = d.batch(step, 64);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                if use_kfac {
                    kfac.step(&mut model);
                }
                let lr = 0.02;
                model.update_params(|p, g| p.axpy(-lr, g));
                if step % 10 == 9 {
                    let logits = model.forward(&d.x, false);
                    if accuracy(&logits, &d.y) > 0.97 {
                        return step + 1;
                    }
                }
            }
            400
        };
        let kfac_iters = iters_to(true);
        let sgd_iters = iters_to(false);
        assert!(
            kfac_iters < sgd_iters,
            "kfac {kfac_iters} vs sgd {sgd_iters}"
        );
    }

    #[test]
    fn full_step_preconditions_linear_layers_only() {
        let mut rng = Rng::new(7);
        let mut model = models::mlp(&[4, 8, 2], &mut rng);
        let x = Matrix::random_normal(6, 4, &mut rng);
        let y = model.forward(&x, true);
        model.backward(&y);
        let raw0 = model.layer(0).grads().unwrap().clone();
        let mut kfac = Kfac::new(KfacConfig::default());
        kfac.step(&mut model);
        let pre0 = model.layer(0).grads().unwrap().clone();
        assert!(raw0.max_diff(&pre0) > 1e-7, "gradient unchanged");
    }

    /// The implicit route must equal the dense factored-damping inverse
    /// `((A + π√γ I) ⊗ (G + √γ/π I))⁻¹ vec(∇W)`.
    #[test]
    fn implicit_preconditioner_matches_dense_factored_inverse() {
        let mut rng = Rng::new(20);
        let make_spd = |n: usize, rng: &mut Rng| {
            let b = Matrix::random_normal(n, n, rng);
            let mut spd = b.t_matmul(&b);
            spd.add_diag(0.2);
            spd.symmetrize();
            spd
        };
        let a = make_spd(4, &mut rng);
        let g = make_spd(3, &mut rng);
        let grad = Matrix::random_normal(4, 3, &mut rng);
        let gamma = 0.05f32;
        let pi = pi_factor(&a, &g);

        let mut a_damped = a.clone();
        a_damped.add_diag(pi * gamma.sqrt());
        let mut g_damped = g.clone();
        g_damped.add_diag(gamma.sqrt() / pi);

        let fast = precondition_implicit(
            &grad,
            &Cholesky::new(&a_damped).unwrap(),
            &Cholesky::new(&g_damped).unwrap(),
        );

        let f = a_damped.kron(&g_damped);
        let solved = Cholesky::new(&f).unwrap().solve_vec(grad.as_slice());
        let dense = Matrix::from_vec(4, 3, solved);
        assert!(
            fast.max_diff(&dense) < 1e-3 * dense.max_abs().max(1.0),
            "diff {}",
            fast.max_diff(&dense)
        );
    }

    #[test]
    fn eigen_and_implicit_agree_in_direction() {
        // Different damping geometries, same preconditioning intent: the
        // two outputs should be strongly aligned (cosine similarity).
        let mut rng = Rng::new(21);
        let mut lin = Linear::new(8, 5, &mut rng);
        let x = Matrix::random_normal(24, 8, &mut rng);
        let y = lin.forward(&x, true);
        let _ = lin.backward(&y);
        let stats = lin.kfac_stats().unwrap();
        let grad = lin.grads().unwrap().clone();

        let mut out = Vec::new();
        for inversion in [InversionMethod::Eigen, InversionMethod::Implicit] {
            let mut kfac = Kfac::new(KfacConfig {
                damping: 0.05,
                inversion,
                ..Default::default()
            });
            kfac.update_layer(0, &stats);
            out.push(kfac.precondition_layer(0, &grad));
        }
        let dot: f64 = out[0]
            .as_slice()
            .iter()
            .zip(out[1].as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let cos = dot / (out[0].fro_norm() as f64 * out[1].fro_norm() as f64);
        assert!(cos > 0.9, "cosine {cos}");
    }

    #[test]
    fn implicit_route_trains_as_well_as_eigen() {
        let run_with = |inversion: InversionMethod| -> f64 {
            let mut rng = Rng::new(22);
            let d = data::gaussian_blobs(300, 8, 3, 0.5, 23);
            let mut model = models::mlp(&[8, 24, 3], &mut rng);
            let mut kfac = Kfac::new(KfacConfig {
                damping: 0.05,
                inversion,
                ..Default::default()
            });
            for step in 0..150 {
                let (x, y) = d.batch(step, 32);
                let logits = model.forward(&x, true);
                let (_, grad) = softmax_cross_entropy(&logits, &y);
                model.backward(&grad);
                kfac.step(&mut model);
                model.update_params(|p, g| p.axpy(-0.02, g));
            }
            let logits = model.forward(&d.x, false);
            accuracy(&logits, &d.y)
        };
        let eig = run_with(InversionMethod::Eigen);
        let imp = run_with(InversionMethod::Implicit);
        assert!(eig > 0.93, "eigen acc {eig}");
        assert!(imp > eig - 0.03, "implicit {imp} vs eigen {eig}");
    }

    #[test]
    fn pi_factor_balances_traces() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 0.0, 0.0, 4.0]); // tr/dim = 4
        let g = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]); // tr/dim = 1
        assert!((pi_factor(&a, &g) - 2.0).abs() < 1e-6);
        // Degenerate zero-trace inputs stay finite.
        let z = Matrix::zeros(2, 2);
        assert!(pi_factor(&z, &z).is_finite());
    }

    #[test]
    fn damping_bounds_the_preconditioner_gain() {
        // With eigenvalues >= 0 the preconditioner's spectral gain is at
        // most 1/γ; the output cannot blow up.
        let mut rng = Rng::new(8);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Matrix::random_normal(12, 6, &mut rng);
        let y = lin.forward(&x, true);
        let _ = lin.backward(&y);
        let stats = lin.kfac_stats().unwrap();
        let mut kfac = Kfac::new(KfacConfig {
            damping: 0.1,
            ..Default::default()
        });
        kfac.update_layer(0, &stats);
        let grad = lin.grads().unwrap().clone();
        let pre = kfac.precondition_layer(0, &grad);
        assert!(pre.fro_norm() <= grad.fro_norm() / 0.1 * 1.01);
    }
}
