//! # compso-kfac
//!
//! The second-order optimization substrate: a from-scratch K-FAC
//! optimizer (§2.1 of the paper), its KAISA-style distributed variant
//! (§2.2) with pluggable gradient compression on the preconditioned-
//! gradient all-gather — the communication COMPSO targets — plus the
//! first-order baselines (SGD with momentum, Adam) and the two learning-
//! rate schedules the adaptive compression mechanism keys off (StepLR,
//! SmoothLR).
//!
//! Distributed step anatomy (Fig. 2 of the paper):
//!
//! 1. local forward/backward on the rank's data shard;
//! 2. all-reduce of the raw gradients (data-parallel sync);
//! 3. covariance factors `A = E[ããᵀ]`, `G = E[ggᵀ]` computed locally,
//!    all-reduced, folded into running averages;
//! 4. each layer's eigendecomposition + preconditioning on its *owner*
//!    rank (greedy cost-balanced assignment, refreshed factors every
//!    `eigen_refresh` iterations);
//! 5. all-gather of the preconditioned gradients — optionally compressed
//!    with any [`compso_core::Compressor`];
//! 6. identical parameter update on every rank.

pub mod checkpoint;
pub mod distributed;
pub mod kfac;
pub mod optim;
pub mod schedule;

pub use checkpoint::{CheckpointConfig, CheckpointCoordinator, CoordError, Restored};
pub use distributed::{DistKfac, DistKfacConfig, DistKfacState, StepStats};
pub use kfac::{Kfac, KfacConfig, LayerStateExport};
pub use optim::{Adam, Sgd};
pub use schedule::{LrSchedule, SmoothLr, StepLr};
