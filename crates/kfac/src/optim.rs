//! First-order baseline optimizers.
//!
//! SGD with momentum is the paper's first-order baseline (and the final
//! update rule applied to K-FAC's preconditioned gradients); Adam rounds
//! out the conventional-optimizer family mentioned in §1.

use compso_dnn::Sequential;
use compso_tensor::Matrix;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    velocities: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new() -> Self {
        Sgd {
            momentum: 0.0,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(momentum: f32) -> Self {
        Sgd {
            momentum,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// The momentum buffers, one per trainable layer (empty until the
    /// first momentum step). Exported for checkpointing.
    pub fn velocities(&self) -> &[Matrix] {
        &self.velocities
    }

    /// Replaces the momentum buffers from a checkpoint. The next
    /// [`Sgd::step`] continues the restored velocity trajectory
    /// bit-identically.
    pub fn set_velocities(&mut self, velocities: Vec<Matrix>) {
        self.velocities = velocities;
    }

    /// Applies one update with learning rate `lr` using each trainable
    /// layer's stored gradient.
    pub fn step(&mut self, model: &mut Sequential, lr: f32) {
        let indices = model.trainable_indices();
        if self.velocities.is_empty() && self.momentum > 0.0 {
            for &i in &indices {
                let p = model.layer(i).params().unwrap();
                self.velocities.push(Matrix::zeros(p.rows(), p.cols()));
            }
        }
        for (slot, &i) in indices.iter().enumerate() {
            let layer = model.layer_mut(i);
            let mut grad = layer.grads().expect("missing gradient").clone();
            if self.weight_decay > 0.0 {
                let params = layer.params().unwrap().clone();
                grad.axpy(self.weight_decay, &params);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocities[slot];
                v.scale(self.momentum);
                v.axpy(1.0, &grad);
                layer.params_mut().unwrap().axpy(-lr, &v.clone());
            } else {
                layer.params_mut().unwrap().axpy(-lr, &grad);
            }
        }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

/// Adam (Kingma & Ba, 2014).
pub struct Adam {
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: i32,
}

impl Adam {
    /// Adam with the standard hyperparameters.
    pub fn new() -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Exports the full Adam state `(m, v, t)` for checkpointing. The
    /// timestep `t` must travel with the moments: it drives the bias
    /// correction, so restoring moments without it would re-warm the
    /// step-size schedule and fork the trajectory.
    pub fn state(&self) -> (&[Matrix], &[Matrix], i32) {
        (&self.m, &self.v, self.t)
    }

    /// Restores the Adam state from a checkpoint (inverse of
    /// [`Adam::state`]).
    pub fn set_state(&mut self, m: Vec<Matrix>, v: Vec<Matrix>, t: i32) {
        self.m = m;
        self.v = v;
        self.t = t;
    }

    /// Applies one Adam update with learning rate `lr`.
    pub fn step(&mut self, model: &mut Sequential, lr: f32) {
        let indices = model.trainable_indices();
        if self.m.is_empty() {
            for &i in &indices {
                let p = model.layer(i).params().unwrap();
                self.m.push(Matrix::zeros(p.rows(), p.cols()));
                self.v.push(Matrix::zeros(p.rows(), p.cols()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (slot, &i) in indices.iter().enumerate() {
            let layer = model.layer_mut(i);
            let grad = layer.grads().expect("missing gradient").clone();
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for ((mv, vv), &g) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(grad.as_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            }
            let params = layer.params_mut().unwrap();
            for ((p, &mv), &vv) in params
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *p -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_dnn::loss::{accuracy, softmax_cross_entropy};
    use compso_dnn::{data, models};
    use compso_tensor::Rng;

    fn train<F: FnMut(&mut Sequential)>(
        model: &mut Sequential,
        d: &data::Dataset,
        steps: usize,
        batch: usize,
        mut apply: F,
    ) -> f64 {
        for step in 0..steps {
            let (x, y) = d.batch(step, batch);
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            apply(model);
        }
        let logits = model.forward(&d.x, false);
        accuracy(&logits, &d.y)
    }

    #[test]
    fn sgd_converges_on_blobs() {
        let mut rng = Rng::new(1);
        let d = data::gaussian_blobs(300, 6, 3, 0.2, 2);
        let mut model = models::mlp(&[6, 24, 3], &mut rng);
        let mut opt = Sgd::new();
        let acc = train(&mut model, &d, 200, 32, |m| opt.step(m, 0.02));
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn momentum_accelerates_early_convergence() {
        let run = |momentum: f32| -> f64 {
            let mut rng = Rng::new(3);
            let d = data::gaussian_blobs(300, 6, 3, 0.3, 4);
            let mut model = models::mlp(&[6, 24, 3], &mut rng);
            let mut opt = Sgd::with_momentum(momentum);
            train(&mut model, &d, 40, 32, |m| opt.step(m, 0.004))
        };
        let plain = run(0.0);
        let momentum = run(0.9);
        assert!(
            momentum > plain - 0.02,
            "momentum {momentum} vs plain {plain}"
        );
    }

    #[test]
    fn adam_converges_on_blobs() {
        let mut rng = Rng::new(5);
        let d = data::gaussian_blobs(300, 6, 3, 0.2, 6);
        let mut model = models::mlp(&[6, 24, 3], &mut rng);
        let mut opt = Adam::new();
        let acc = train(&mut model, &d, 200, 32, |m| opt.step(m, 0.01));
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::new(7);
        let mut model = models::mlp(&[4, 4, 2], &mut rng);
        // Zero gradients: only the decay term acts.
        let x = compso_tensor::Matrix::zeros(2, 4);
        let y = model.forward(&x, true);
        let zero_grad = compso_tensor::Matrix::zeros(y.rows(), y.cols());
        model.backward(&zero_grad);
        let norm_before = model.layer(0).params().unwrap().fro_norm();
        let mut opt = Sgd {
            momentum: 0.0,
            weight_decay: 0.1,
            velocities: Vec::new(),
        };
        for _ in 0..10 {
            opt.step(&mut model, 0.1);
        }
        let norm_after = model.layer(0).params().unwrap().fro_norm();
        assert!(norm_after < norm_before, "{norm_after} vs {norm_before}");
    }
}
