//! Coordinated distributed checkpoint/restore for [`DistKfac`] training.
//!
//! Each rank persists exactly the state only it can reproduce — its
//! stochastic-compression RNG stream, its degradation-ladder last-good
//! store — plus the K-FAC factor states of the layers it *owns* under
//! the KAISA schedule. Factor state is replicated across ranks (every
//! rank folds the all-reduced covariances and refreshes inverses for
//! every layer), so sharding the save by owner writes each factor to
//! disk exactly once; at restore the shards are redistributed with one
//! variable-size all-gather and every rank reconstructs the full
//! replicated state. Rank 0 additionally carries the globals: model
//! parameters, the ownership map, the step counter, and any caller
//! extras (optimizer moment buffers), broadcast to everyone at restore.
//!
//! Save protocol (every rank): rank 0 prepares the tmp dir → barrier →
//! each rank writes + fsyncs its payload file → all-gather of the
//! per-rank file metadata → rank 0 writes the manifest last, renames
//! the directory into place, fsyncs the store root → barrier → rank 0
//! GCs old snapshots. A crash anywhere leaves either no trace or a
//! manifest-less torn directory that restore skips.
//!
//! Restore walks committed snapshots newest-first; every rank probes
//! locally (manifest + its own payload file) and a one-byte all-gather
//! reconciles the verdicts, so all ranks agree on which snapshot to
//! resume from even when some files are torn or corrupt. Every skipped
//! snapshot increments `ckpt/restore_rungs`.

use crate::distributed::{DistKfac, DistKfacState};
use crate::kfac::LayerStateExport;
use crate::optim::{Adam, Sgd};
use compso_ckpt::{
    decode_tensors, encode_tensors, CheckpointStore, CkptError, Manifest, RankFileMeta, Snapshot,
    TensorData, TensorEntry,
};
use compso_comm::collectives::{allgather_var, allgather_var_quiet, broadcast_bytes};
use compso_comm::{CommError, Communicator};
use compso_core::encoders::Codec;
use compso_core::wire::{frame_checksummed, magic, unframe_checksummed, Reader, Writer};
use compso_dnn::Sequential;
use compso_obs::names;
use compso_tensor::{Cholesky, EigenDecomposition};
use std::path::PathBuf;

/// Checkpoint coordination configuration.
pub struct CheckpointConfig {
    /// Store root directory (shared by all ranks).
    pub dir: PathBuf,
    /// Committed snapshots to keep after GC.
    pub retain_last: usize,
    /// Lossless codec for the tensor payloads.
    pub codec: Codec,
    /// Fingerprint of the training configuration (see [`fingerprint`]).
    /// Restore rejects snapshots taken under a different fingerprint:
    /// resuming under a changed config could not be bit-identical.
    pub fingerprint: u64,
}

impl CheckpointConfig {
    /// Sensible defaults: keep the last two snapshots, rANS payloads.
    /// The interleaved entropy coder is an order of magnitude faster than
    /// the LZ+rANS chain on float tensor payloads while compressing them
    /// almost as well (raw f32 bits carry little LZ-exploitable
    /// repetition), so snapshots stop being a ~20 MB/s stall.
    pub fn new(dir: impl Into<PathBuf>, fingerprint: u64) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            retain_last: 2,
            codec: Codec::Ans,
            fingerprint,
        }
    }
}

/// FNV-1a over the given parts (with separators), for cheap, stable
/// config fingerprints.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0x1F; // separator so ["ab","c"] != ["a","bc"]
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Errors surfaced by coordinated save/restore.
#[derive(Debug)]
pub enum CoordError {
    /// Transport failure during a coordination collective.
    Comm(CommError),
    /// Store or format failure.
    Ckpt(CkptError),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Comm(e) => write!(f, "checkpoint comm: {e}"),
            CoordError::Ckpt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<CommError> for CoordError {
    fn from(e: CommError) -> Self {
        CoordError::Comm(e)
    }
}

impl From<CkptError> for CoordError {
    fn from(e: CkptError) -> Self {
        CoordError::Ckpt(e)
    }
}

impl From<compso_core::wire::WireError> for CoordError {
    fn from(e: compso_core::wire::WireError) -> Self {
        CoordError::Ckpt(CkptError::Wire(e))
    }
}

/// What a successful [`CheckpointCoordinator::restore`] hands back.
pub struct Restored {
    /// The step the snapshot was taken at; resume training at `step`.
    pub step: u64,
    /// The broadcast rank-0 globals (model params already installed;
    /// optimizer extras still inside for [`restore_sgd`] /
    /// [`restore_adam`] / custom lookups).
    pub globals: Snapshot,
}

/// The per-rank driver of coordinated snapshots.
pub struct CheckpointCoordinator {
    store: CheckpointStore,
    codec: Codec,
    fingerprint: u64,
}

impl CheckpointCoordinator {
    /// Opens (creating if needed) the store.
    pub fn new(config: CheckpointConfig) -> Result<Self, CkptError> {
        Ok(CheckpointCoordinator {
            store: CheckpointStore::new(config.dir, config.retain_last)?,
            codec: config.codec,
            fingerprint: config.fingerprint,
        })
    }

    /// Direct store access (tests, tooling).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Takes one coordinated snapshot at `step`. Collective: every rank
    /// must call it at the same point of the training loop. `extras`
    /// are appended to rank 0's globals (use [`sgd_entries`] /
    /// [`adam_entries`] for the first-order moment buffers; pass `&[]`
    /// when the loop keeps no optimizer state).
    pub fn save(
        &self,
        comm: &mut Communicator,
        step: u64,
        dist: &DistKfac,
        model: &Sequential,
        extras: &[TensorEntry],
    ) -> Result<(), CoordError> {
        let rec = dist.recorder().clone();
        let _span = rec.span(names::CKPT_SAVE);
        let me = comm.rank();
        let snap = build_rank_snapshot(comm, step, dist, model, extras);

        if me == 0 {
            self.store.prepare_tmp(step)?;
        }
        comm.barrier()?;
        let (meta, stats) = self
            .store
            .write_rank_file(step, me as u32, &snap, self.codec)?;
        rec.add(names::CKPT_BYTES, stats.bytes_written);
        rec.add(names::CKPT_RAW_BYTES, stats.raw_bytes);
        let metas = allgather_var(comm, meta.encode())?;
        if me == 0 {
            let mut ranks = Vec::with_capacity(metas.len());
            for bytes in &metas {
                ranks.push(RankFileMeta::decode(bytes)?);
            }
            let manifest = Manifest {
                step,
                world_size: comm.size() as u32,
                fingerprint: self.fingerprint,
                epoch: comm.epoch(),
                ranks,
            };
            let manifest_bytes = self.store.commit(&manifest)?;
            rec.add(names::CKPT_BYTES, manifest_bytes);
        }
        comm.barrier()?;
        if me == 0 {
            self.store.gc()?;
        }
        rec.incr(names::CKPT_SAVES);
        Ok(())
    }

    /// Restores the newest fully-loadable snapshot into `dist` and
    /// `model`. Collective. Walks snapshots newest-first, skipping torn
    /// or corrupt ones (each skip increments `ckpt/restore_rungs` and
    /// is reconciled across ranks, so everyone resumes from the same
    /// snapshot); errors with [`CkptError::NoSnapshot`] when nothing
    /// loadable remains. A snapshot from a different world size is
    /// resharded on the fly: each rank loads its stripe of the old
    /// owner-sharded factor files (see [`Self::probe`]'s ownership
    /// math), the ownership map is rebuilt from scratch, and rank-local
    /// state is dropped — the result is bit-identical to a fresh
    /// restore of the same snapshot at the current world size. A
    /// fingerprint mismatch is a hard error.
    pub fn restore(
        &self,
        comm: &mut Communicator,
        dist: &mut DistKfac,
        model: &mut Sequential,
    ) -> Result<Restored, CoordError> {
        let rec = dist.recorder().clone();
        let _span = rec.span(names::CKPT_LOAD);
        let me = comm.rank();

        // Pick the newest snapshot every rank can fully load.
        let mut steps = self.store.list_steps()?;
        steps.reverse();
        let mut chosen: Option<(Manifest, Snapshot)> = None;
        for step in steps {
            let probe = self.probe(comm, step)?;
            let statuses = allgather_var(comm, vec![u8::from(probe.is_some())])?;
            if statuses.iter().all(|s| s.first() == Some(&1)) {
                chosen = probe;
                break;
            }
            rec.incr(names::CKPT_RESTORE_RUNGS);
        }
        let (manifest, snap) = chosen.ok_or(CkptError::NoSnapshot)?;
        let cross_world = manifest.world_size as usize != comm.size();
        if cross_world {
            rec.incr(names::CKPT_RESTORE_RUNGS_WORLD_SIZE);
            eprintln!(
                "compso-ckpt: restoring a {}-rank snapshot (step {}) into a {}-rank group; \
                 resharding owner-sharded factors, dropping rank-local state",
                manifest.world_size,
                manifest.step,
                comm.size()
            );
        }

        // Redistribute the owner-sharded factor states: one all-gather,
        // then every rank imports every layer (factor state is
        // replicated by design).
        let mine: Vec<TensorEntry> = snap.with_prefix("kfac/").cloned().collect();
        let blobs = allgather_var(comm, frame_checksummed(&encode_tensors(&mine)))?;
        for blob in &blobs {
            let entries = decode_tensors(unframe_checksummed(blob)?)?;
            for (idx, state) in layer_states_from_entries(&entries)? {
                dist.kfac_mut().import_layer_state(idx, state);
            }
        }

        // Rank 0 broadcasts the globals (model params, ownership map,
        // optimizer extras).
        let mut gbytes = if me == 0 {
            let globals: Vec<TensorEntry> = snap
                .tensors
                .iter()
                .filter(|t| !t.name.starts_with("rank/") && !t.name.starts_with("kfac/"))
                .cloned()
                .collect();
            frame_checksummed(&encode_tensors(&globals))
        } else {
            Vec::new()
        };
        broadcast_bytes(comm, 0, &mut gbytes)?;
        let mut globals = Snapshot::new(manifest.step);
        globals.tensors = decode_tensors(unframe_checksummed(&gbytes)?)?;
        if globals.require_u64s("global/step")? != [manifest.step] {
            return Err(CkptError::Corrupt("global step vs manifest").into());
        }

        // Install model parameters.
        install_model_params(&globals, model)?;

        // Install this rank's coordination state. Across a world-size
        // change the saved ownership map indexes ranks that no longer
        // exist and the rank-local state belongs to dropped identities:
        // the map rebuilds for the new view at the next step, the ladder
        // store starts empty, and the RNG keeps its seed-derived stream
        // (identical to a fresh process restoring the same snapshot at
        // this world size, which is the bit-identity yardstick).
        if cross_world {
            let rng = dist.export_state().rng;
            dist.import_state(DistKfacState {
                owners: None,
                rng,
                last_good: Vec::new(),
            });
        } else {
            let owners = globals
                .get("global/owners")
                .map(|t| match &t.data {
                    TensorData::U64(v) => Ok(v.iter().map(|&o| o as usize).collect::<Vec<_>>()),
                    _ => Err(CkptError::Corrupt("owners dtype")),
                })
                .transpose()?;
            let rng = snap.require_u64s("rank/rng")?;
            if rng.len() != 6 {
                return Err(CkptError::Corrupt("rng state arity").into());
            }
            let spare = (rng[4] == 1).then(|| f64::from_bits(rng[5]));
            let mut last_good = Vec::new();
            for &idx in snap.require_u64s("rank/last_good_idx")? {
                let idx = idx as usize;
                last_good.push((idx, snap.require_matrix(&format!("rank/last_good/{idx}"))?));
            }
            dist.import_state(DistKfacState {
                owners,
                rng: ([rng[0], rng[1], rng[2], rng[3]], spare),
                last_good,
            });
        }

        Ok(Restored {
            step: manifest.step,
            globals,
        })
    }

    /// Local (per-rank) probe of one snapshot: manifest + the payload
    /// files this rank is responsible for under the *current* world
    /// size. With an equal world size that is exactly this rank's own
    /// file; into a different world size `M`, virtual rank `r` takes the
    /// stripe of old files `{r, r + M, r + 2M, ...}` — a partition of
    /// the old files across the new group, so every owner-sharded factor
    /// is loaded exactly once group-wide. Soft failures (missing, torn,
    /// or corrupt data) yield `Ok(None)`; a fingerprint mismatch is hard.
    fn probe(
        &self,
        comm: &Communicator,
        step: u64,
    ) -> Result<Option<(Manifest, Snapshot)>, CoordError> {
        let manifest = match self.store.load_manifest(step) {
            Ok(m) => m,
            Err(_) => return Ok(None),
        };
        if manifest.fingerprint != self.fingerprint {
            return Err(CkptError::Corrupt("checkpoint fingerprint mismatch").into());
        }
        let old = manifest.world_size as usize;
        let me = comm.rank();
        if old == comm.size() {
            return match self.store.load_rank(step, &manifest, me as u32) {
                Ok(snap) => Ok(Some((manifest, snap))),
                Err(_) => Ok(None),
            };
        }
        // Cross-world-size restore: merge this rank's stripe, keeping
        // the owner-sharded factor entries plus file 0's globals (which
        // land on new rank 0, because file 0 is always in rank 0's
        // stripe). Rank-local entries — the compression RNG stream, the
        // ladder last-good store — belong to rank identities of the old
        // world and are dropped.
        let mut merged = Snapshot::new(step);
        for file in (me..old).step_by(comm.size()) {
            let snap = match self.store.load_rank(step, &manifest, file as u32) {
                Ok(s) => s,
                Err(_) => return Ok(None),
            };
            for t in snap.tensors {
                if t.name.starts_with("kfac/") || (file == 0 && !t.name.starts_with("rank/")) {
                    merged.tensors.push(t);
                }
            }
        }
        Ok(Some((manifest, merged)))
    }

    /// Collective-free restore for a restarted rank that is still
    /// *outside* the group (before [`compso_comm::rejoin`]): walks
    /// snapshots newest-first and loads the newest one that is fully
    /// readable locally — manifest plus **every** rank file, since with
    /// no peers the factor shards cannot be all-gathered. Installs the
    /// full replicated factor state and the rank-0 globals (model
    /// parameters); the ownership map and rank-local state are dropped
    /// exactly as in a cross-world restore, because the view this rank
    /// will rejoin may have any size. Factor state newer than the
    /// snapshot catches up live afterwards via [`catch_up_rejoined`].
    pub fn restore_local(
        &self,
        dist: &mut DistKfac,
        model: &mut Sequential,
    ) -> Result<Restored, CoordError> {
        let rec = dist.recorder().clone();
        let _span = rec.span(names::CKPT_LOAD);
        let mut steps = self.store.list_steps()?;
        steps.reverse();
        'steps: for step in steps {
            let manifest = match self.store.load_manifest(step) {
                Ok(m) => m,
                Err(_) => {
                    rec.incr(names::CKPT_RESTORE_RUNGS);
                    continue;
                }
            };
            if manifest.fingerprint != self.fingerprint {
                return Err(CkptError::Corrupt("checkpoint fingerprint mismatch").into());
            }
            let mut snaps = Vec::with_capacity(manifest.world_size as usize);
            for file in 0..manifest.world_size {
                match self.store.load_rank(step, &manifest, file) {
                    Ok(s) => snaps.push(s),
                    Err(_) => {
                        rec.incr(names::CKPT_RESTORE_RUNGS);
                        continue 'steps;
                    }
                }
            }
            for snap in &snaps {
                let entries: Vec<TensorEntry> = snap.with_prefix("kfac/").cloned().collect();
                for (idx, state) in layer_states_from_entries(&entries)? {
                    dist.kfac_mut().import_layer_state(idx, state);
                }
            }
            let mut globals = Snapshot::new(step);
            globals.tensors = snaps[0]
                .tensors
                .iter()
                .filter(|t| !t.name.starts_with("rank/") && !t.name.starts_with("kfac/"))
                .cloned()
                .collect();
            if globals.require_u64s("global/step")? != [manifest.step] {
                return Err(CkptError::Corrupt("global step vs manifest").into());
            }
            install_model_params(&globals, model)?;
            let rng = dist.export_state().rng;
            dist.import_state(DistKfacState {
                owners: None,
                rng,
                last_good: Vec::new(),
            });
            return Ok(Restored {
                step: manifest.step,
                globals,
            });
        }
        Err(CkptError::NoSnapshot.into())
    }
}

/// Installs the broadcast `model/<idx>` parameter matrices into the
/// model, shape-checked.
fn install_model_params(globals: &Snapshot, model: &mut Sequential) -> Result<(), CoordError> {
    for &idx in &model.trainable_indices() {
        let m = globals.require_matrix(&format!("model/{idx}"))?;
        let p = model
            .layer_mut(idx)
            .params_mut()
            .ok_or(CkptError::Corrupt("trainable layer without params"))?;
        if (p.rows(), p.cols()) != (m.rows(), m.cols()) {
            return Err(CkptError::Corrupt("model parameter shape").into());
        }
        *p = m;
    }
    Ok(())
}

/// Encodes one rank's factor catch-up contribution for a live rejoin: a
/// `0xCC` frame carrying the membership epoch it was built under, the
/// sender's physical rank, and a length-prefixed tensor block — the
/// whole thing wrapped in a `0xCF` CRC envelope.
pub fn encode_rejoin_delta(epoch: u64, sender: u32, entries: &[TensorEntry]) -> Vec<u8> {
    let block = encode_tensors(entries);
    let mut w = Writer::with_capacity(21 + block.len());
    w.u8(magic::MAGIC_REJOIN);
    w.u64(epoch);
    w.u32(sender);
    w.block(&block);
    frame_checksummed(&w.into_bytes())
}

/// Decodes a [`encode_rejoin_delta`] frame: CRC envelope first, then
/// magic, epoch, sender, and the tensor block; trailing bytes rejected.
pub fn decode_rejoin_delta(bytes: &[u8]) -> Result<(u64, u32, Vec<TensorEntry>), CkptError> {
    let inner = unframe_checksummed(bytes)?;
    let mut r = Reader::new(inner);
    if r.u8()? != magic::MAGIC_REJOIN {
        return Err(CkptError::Corrupt("rejoin delta magic"));
    }
    let epoch = r.u64()?;
    let sender = r.u32()?;
    let entries = decode_tensors(r.block()?)?;
    if !r.is_exhausted() {
        return Err(CkptError::Corrupt("trailing rejoin delta bytes"));
    }
    Ok((epoch, sender, entries))
}

/// Live factor catch-up after a rank rejoins: collective over the *new*
/// view, called by every rank (members and the joiner alike) right
/// after [`compso_comm::admit_pending`] / [`compso_comm::rejoin`]
/// commit the admission.
///
/// The members shard the replicated factor state among themselves —
/// member `k` of `m` contributes the layers at positions `pos % m == k`
/// of [`Kfac::state_indices`] — so the joiner receives every layer
/// exactly once while no single member uploads the whole state. The
/// joiner contributes an empty delta. One variable-size all-gather
/// (`comm/allgather_rejoin`) moves the shards; the joiner imports them
/// and counts `comm/allgather_rejoin` traffic like any collective. The
/// members then broadcast the current model parameters from the lowest
/// live member rank, which the joiner installs — its checkpoint restore
/// may be several steps behind the group.
///
/// Deltas carry the membership epoch; a frame from a different epoch is
/// a protocol error (a stale catch-up must never install).
///
/// [`Kfac::state_indices`]: crate::kfac::Kfac::state_indices
pub fn catch_up_rejoined(
    comm: &mut Communicator,
    dist: &mut DistKfac,
    model: &mut Sequential,
    joiner: usize,
) -> Result<(), CommError> {
    let rec = dist.recorder().clone();
    let epoch = comm.epoch();
    let me_phys = comm.phys_rank();
    let members: Vec<usize> = comm
        .live_ranks()
        .iter()
        .copied()
        .filter(|&r| r != joiner)
        .collect();
    let bad = |expected: &'static str| CommError::Protocol { expected };

    // Build this rank's shard.
    let mut entries: Vec<TensorEntry> = Vec::new();
    if me_phys != joiner {
        let k = members
            .iter()
            .position(|&r| r == me_phys)
            .ok_or_else(|| bad("a live member of the new view"))?;
        let mut shard = Snapshot::new(0);
        for (pos, idx) in dist.kfac().state_indices().into_iter().enumerate() {
            if pos % members.len() == k {
                if let Some(layer) = dist.kfac().export_layer_state(idx) {
                    push_layer_state(&mut shard, idx, &layer);
                }
            }
        }
        entries = shard.tensors;
    }
    let payload = encode_rejoin_delta(epoch, me_phys as u32, &entries);
    rec.incr(names::COMM_MEMBERSHIP);
    let deltas = allgather_var_quiet(comm, payload, names::COMM_ALLGATHER_REJOIN)?;

    // The joiner installs every shard; members validate the envelopes
    // (same epoch, sane senders) but keep their own replicated state.
    for delta in &deltas {
        let (d_epoch, _, d_entries) =
            decode_rejoin_delta(delta).map_err(|_| bad("a decodable rejoin delta"))?;
        if d_epoch != epoch {
            return Err(bad("a rejoin delta from the current epoch"));
        }
        if me_phys == joiner {
            for (idx, state) in layer_states_from_entries(&d_entries)
                .map_err(|_| bad("valid rejoin layer state"))?
            {
                dist.kfac_mut().import_layer_state(idx, state);
            }
        }
    }

    // Model parameters from the lowest live member: the joiner's
    // checkpoint may be several steps older than the group's weights.
    let root_phys = *members.first().ok_or_else(|| bad("at least one member"))?;
    let root_v = comm
        .live_ranks()
        .iter()
        .position(|&r| r == root_phys)
        .ok_or_else(|| bad("the root member in the live view"))?;
    let mut pbytes = if me_phys == root_phys {
        let mut snap = Snapshot::new(0);
        for &idx in &model.trainable_indices() {
            // lint:allow(no-unwrap-on-comm-path): trainable_indices only lists layers with params
            snap.push_matrix(format!("model/{idx}"), model.layer(idx).params().unwrap());
        }
        frame_checksummed(&encode_tensors(&snap.tensors))
    } else {
        Vec::new()
    };
    broadcast_bytes(comm, root_v, &mut pbytes)?;
    if me_phys == joiner {
        let mut globals = Snapshot::new(0);
        let body =
            unframe_checksummed(&pbytes).map_err(|_| bad("a checksummed parameter frame"))?;
        globals.tensors = decode_tensors(body).map_err(|_| bad("decodable catch-up parameters"))?;
        install_model_params(&globals, model)
            .map_err(|_| bad("installable catch-up parameters"))?;
    }
    Ok(())
}

/// Builds one rank's snapshot contribution (see the module docs for the
/// sharding scheme).
fn build_rank_snapshot(
    comm: &Communicator,
    step: u64,
    dist: &DistKfac,
    model: &Sequential,
    extras: &[TensorEntry],
) -> Snapshot {
    let me = comm.rank();
    let state = dist.export_state();
    let mut snap = Snapshot::new(step);

    // Rank-local: RNG stream + ladder last-good store.
    let (s, spare) = state.rng;
    snap.push_u64s(
        "rank/rng",
        vec![
            s[0],
            s[1],
            s[2],
            s[3],
            u64::from(spare.is_some()),
            spare.map(f64::to_bits).unwrap_or(0),
        ],
    );
    snap.push_u64s(
        "rank/last_good_idx",
        state.last_good.iter().map(|(i, _)| *i as u64).collect(),
    );
    for (idx, m) in &state.last_good {
        snap.push_matrix(format!("rank/last_good/{idx}"), m);
    }

    // Owner-sharded factor states: each factor is written exactly once
    // across the world. Before the first step (no ownership map yet)
    // there is no factor state either, so nothing is lost.
    let kfac_layers = model.kfac_indices();
    let owned: Vec<usize> = match &state.owners {
        Some(owners) => kfac_layers
            .iter()
            .enumerate()
            .filter(|(pos, _)| owners[*pos] == me)
            .map(|(_, &idx)| idx)
            .collect(),
        None => {
            if me == 0 {
                dist.kfac().state_indices()
            } else {
                Vec::new()
            }
        }
    };
    for idx in owned {
        if let Some(layer) = dist.kfac().export_layer_state(idx) {
            push_layer_state(&mut snap, idx, &layer);
        }
    }

    // Rank-0 globals.
    if me == 0 {
        snap.push_u64s("global/step", vec![step]);
        if let Some(owners) = &state.owners {
            snap.push_u64s("global/owners", owners.iter().map(|&o| o as u64).collect());
        }
        for &idx in &model.trainable_indices() {
            let params = model.layer(idx).params().expect("trainable params");
            snap.push_matrix(format!("model/{idx}"), params);
        }
        for e in extras {
            snap.push(e.clone());
        }
    }
    snap
}

/// Serializes one layer's exported factor state under `kfac/{idx}/`.
/// The cached eigendecompositions and Cholesky factors travel with the
/// running averages: recomputing them at restore would see a newer
/// average than the interrupted run did and fork the trajectory.
fn push_layer_state(snap: &mut Snapshot, idx: usize, st: &LayerStateExport) {
    let p = format!("kfac/{idx}");
    snap.push_u64s(
        format!("{p}/meta"),
        vec![
            st.steps as u64,
            u64::from(st.eig_a.is_some()),
            u64::from(st.eig_g.is_some()),
            u64::from(st.chol_a.is_some()),
            u64::from(st.chol_g.is_some()),
        ],
    );
    snap.push_matrix(format!("{p}/a_factor"), &st.a_factor);
    snap.push_matrix(format!("{p}/g_factor"), &st.g_factor);
    for (tag, eig) in [("eig_a", &st.eig_a), ("eig_g", &st.eig_g)] {
        if let Some(e) = eig {
            snap.push(TensorEntry::vector(
                format!("{p}/{tag}/values"),
                TensorData::F32(e.values.clone()),
            ));
            snap.push_matrix(format!("{p}/{tag}/vectors"), &e.vectors);
        }
    }
    for (tag, chol) in [("chol_a", &st.chol_a), ("chol_g", &st.chol_g)] {
        if let Some(c) = chol {
            let (n, l) = c.raw();
            snap.push(TensorEntry {
                name: format!("{p}/{tag}"),
                rows: n,
                cols: n,
                data: TensorData::F64(l.to_vec()),
            });
        }
    }
}

/// Inverse of [`push_layer_state`] over a flat entry list (one rank's
/// redistributed shard).
fn layer_states_from_entries(
    entries: &[TensorEntry],
) -> Result<Vec<(usize, LayerStateExport)>, CkptError> {
    let mut lookup = Snapshot::new(0);
    lookup.tensors = entries.to_vec();
    let mut out = Vec::new();
    for t in entries {
        let Some(rest) = t.name.strip_prefix("kfac/") else {
            continue;
        };
        let Some(idx_str) = rest.strip_suffix("/meta") else {
            continue;
        };
        let idx: usize = idx_str
            .parse()
            .map_err(|_| CkptError::Corrupt("layer index"))?;
        let meta = lookup.require_u64s(&t.name)?;
        if meta.len() != 5 || meta[1..].iter().any(|&f| f > 1) {
            return Err(CkptError::Corrupt("layer meta"));
        }
        let p = format!("kfac/{idx}");
        let eig = |tag: &str, present: bool| -> Result<Option<EigenDecomposition>, CkptError> {
            if !present {
                return Ok(None);
            }
            let values = match &lookup.require(&format!("{p}/{tag}/values"))?.data {
                TensorData::F32(v) => v.clone(),
                _ => return Err(CkptError::Corrupt("eigenvalue dtype")),
            };
            let vectors = lookup.require_matrix(&format!("{p}/{tag}/vectors"))?;
            if values.len() != vectors.cols() {
                return Err(CkptError::Corrupt("eigenpair arity"));
            }
            Ok(Some(EigenDecomposition { values, vectors }))
        };
        let chol = |tag: &str, present: bool| -> Result<Option<Cholesky>, CkptError> {
            if !present {
                return Ok(None);
            }
            let e = lookup.require(&format!("{p}/{tag}"))?;
            let l = match &e.data {
                TensorData::F64(v) => v.clone(),
                _ => return Err(CkptError::Corrupt("cholesky dtype")),
            };
            if e.rows != e.cols {
                return Err(CkptError::Corrupt("cholesky shape"));
            }
            Cholesky::from_raw(e.rows, l)
                .ok_or(CkptError::Corrupt("cholesky size"))
                .map(Some)
        };
        out.push((
            idx,
            LayerStateExport {
                a_factor: lookup.require_matrix(&format!("{p}/a_factor"))?,
                g_factor: lookup.require_matrix(&format!("{p}/g_factor"))?,
                eig_a: eig("eig_a", meta[1] == 1)?,
                eig_g: eig("eig_g", meta[2] == 1)?,
                chol_a: chol("chol_a", meta[3] == 1)?,
                chol_g: chol("chol_g", meta[4] == 1)?,
                steps: meta[0] as usize,
            },
        ));
    }
    Ok(out)
}

/// SGD momentum buffers as checkpoint extras (`opt/sgd/vel/{slot}`).
pub fn sgd_entries(sgd: &Sgd) -> Vec<TensorEntry> {
    sgd.velocities()
        .iter()
        .enumerate()
        .map(|(slot, v)| TensorEntry::matrix(format!("opt/sgd/vel/{slot}"), v))
        .collect()
}

/// Restores the SGD momentum buffers from the broadcast globals.
pub fn restore_sgd(sgd: &mut Sgd, globals: &Snapshot) -> Result<(), CkptError> {
    let mut velocities = Vec::new();
    while let Some(t) = globals.get(&format!("opt/sgd/vel/{}", velocities.len())) {
        velocities.push(t.to_matrix()?);
    }
    sgd.set_velocities(velocities);
    Ok(())
}

/// Adam state as checkpoint extras (`opt/adam/{m,v}/{slot}`, `opt/adam/t`).
pub fn adam_entries(adam: &Adam) -> Vec<TensorEntry> {
    let (m, v, t) = adam.state();
    let mut out = vec![TensorEntry::vector(
        "opt/adam/t",
        TensorData::U64(vec![t as u64]),
    )];
    for (slot, mm) in m.iter().enumerate() {
        out.push(TensorEntry::matrix(format!("opt/adam/m/{slot}"), mm));
    }
    for (slot, vv) in v.iter().enumerate() {
        out.push(TensorEntry::matrix(format!("opt/adam/v/{slot}"), vv));
    }
    out
}

/// Restores the Adam state from the broadcast globals.
pub fn restore_adam(adam: &mut Adam, globals: &Snapshot) -> Result<(), CkptError> {
    let t = globals.require_u64s("opt/adam/t")?;
    if t.len() != 1 {
        return Err(CkptError::Corrupt("adam timestep arity"));
    }
    let mut m = Vec::new();
    while let Some(e) = globals.get(&format!("opt/adam/m/{}", m.len())) {
        m.push(e.to_matrix()?);
    }
    let mut v = Vec::new();
    while let Some(e) = globals.get(&format!("opt/adam/v/{}", v.len())) {
        v.push(e.to_matrix()?);
    }
    if m.len() != v.len() {
        return Err(CkptError::Corrupt("adam moment arity"));
    }
    adam.set_state(m, v, t[0] as i32);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use compso_tensor::{Matrix, Rng};

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
        assert_ne!(fingerprint(&[]), fingerprint(&[""]));
    }

    #[test]
    fn layer_state_roundtrips_through_entries() {
        let mut rng = Rng::new(3);
        let a = Matrix::from_fn(4, 4, |_, _| rng.normal_f64() as f32);
        let g = Matrix::from_fn(3, 3, |_, _| rng.normal_f64() as f32);
        let eig = EigenDecomposition {
            values: vec![3.0, 1.0, 0.5],
            vectors: Matrix::identity(3),
        };
        let chol = Cholesky::from_raw(4, (0..16).map(|i| i as f64 * 0.25).collect()).unwrap();
        let st = LayerStateExport {
            a_factor: a.clone(),
            g_factor: g.clone(),
            eig_a: None,
            eig_g: Some(eig.clone()),
            chol_a: Some(chol.clone()),
            chol_g: None,
            steps: 17,
        };
        let mut snap = Snapshot::new(0);
        push_layer_state(&mut snap, 2, &st);
        let decoded = layer_states_from_entries(&snap.tensors).unwrap();
        assert_eq!(decoded.len(), 1);
        let (idx, got) = &decoded[0];
        assert_eq!(*idx, 2);
        assert_eq!(got.a_factor, a);
        assert_eq!(got.g_factor, g);
        assert!(got.eig_a.is_none());
        let got_eig = got.eig_g.as_ref().unwrap();
        assert_eq!(got_eig.values, eig.values);
        assert_eq!(got_eig.vectors, eig.vectors);
        assert_eq!(got.chol_a.as_ref().unwrap().raw().1, chol.raw().1);
        assert!(got.chol_g.is_none());
        assert_eq!(got.steps, 17);
    }

    #[test]
    fn sgd_and_adam_extras_roundtrip() {
        let mut rng = Rng::new(9);
        let vel = vec![
            Matrix::from_fn(2, 3, |_, _| rng.normal_f64() as f32),
            Matrix::from_fn(1, 4, |_, _| rng.normal_f64() as f32),
        ];
        let mut sgd = Sgd::with_momentum(0.9);
        sgd.set_velocities(vel.clone());
        let mut globals = Snapshot::new(0);
        for e in sgd_entries(&sgd) {
            globals.push(e);
        }
        let mut sgd2 = Sgd::with_momentum(0.9);
        restore_sgd(&mut sgd2, &globals).unwrap();
        assert_eq!(sgd2.velocities(), &vel[..]);

        let mut adam = Adam::new();
        adam.set_state(vel.clone(), vel.clone(), 7);
        let mut globals = Snapshot::new(0);
        for e in adam_entries(&adam) {
            globals.push(e);
        }
        let mut adam2 = Adam::new();
        restore_adam(&mut adam2, &globals).unwrap();
        let (m, v, t) = adam2.state();
        assert_eq!(m, &vel[..]);
        assert_eq!(v, &vel[..]);
        assert_eq!(t, 7);
    }
}
